// Package scenario generates synthetic deployments at arbitrary scale:
// parameterized basestation topologies (grid, strip, cluster), fleets of
// vehicles on generated routes with staggered departures, and per-scenario
// radio/backplane parameters. It turns the repository's two hand-built
// testbeds (VanLAN, DieselNet) into an unbounded scenario space.
//
// Determinism contract: a scenario is a pure function of (kernel seed,
// Spec). All geometry draws come from kernel RNG streams labeled with the
// spec's canonical Key(), so equal seeds and equal specs yield
// byte-identical deployments, two different specs never perturb each
// other's streams, and Key() doubles as the run-cache discriminator for
// the experiment engine (DESIGN.md §3).
package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/vanlan/vifi/internal/fault"
	"github.com/vanlan/vifi/internal/workload"
)

// Topology selects the basestation placement family.
type Topology int

// Placement families.
const (
	// Grid covers the region with a jittered rows×cols lattice — the
	// "municipal mesh" shape.
	Grid Topology = iota
	// Strip lines basestations along a corridor — a highway or main
	// street deployment.
	Strip
	// Cluster scatters basestations in hot spots — organic shop/home
	// deployments around a town.
	Cluster
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	switch t {
	case Grid:
		return "grid"
	case Strip:
		return "strip"
	case Cluster:
		return "cluster"
	default:
		return "topology(?)"
	}
}

// Spec parameterizes one synthetic deployment. The zero value is not
// runnable; start from a preset (Parse, Preset) and override fields.
type Spec struct {
	Topology Topology
	// BS is the basestation count; Clusters the hot-spot count (Cluster
	// topology only).
	BS       int
	Clusters int
	// Width and Height bound the deployment region in meters.
	Width, Height float64
	// JitterM perturbs basestation placement (lattice jitter for Grid and
	// Strip, hot-spot spread for Cluster).
	JitterM float64

	// Vehicles is the fleet size; SpeedKmh the nominal vehicle speed
	// (each vehicle's actual speed is jittered ±10%); RouteStops the
	// number of stops/waypoints per generated route; DepartStagger the
	// spacing between consecutive vehicle departures.
	Vehicles      int
	SpeedKmh      float64
	RouteStops    int
	DepartStagger time.Duration

	// Districts splits the region into that many radio-isolated vertical
	// stripes (0 and 1 mean a single connected region). Each district gets
	// its own Internet gateway and a proportional share of basestations
	// and vehicles; adjacent stripes are separated by a moat wider than
	// the radio conflict reach, so no frame, carrier-sense or backplane
	// interaction crosses a district boundary. Districted scenarios are
	// what the sharded execution path partitions (one shard = a contiguous
	// group of districts); they also model multi-campus deployments whose
	// sites share nothing but the Internet. Grid topology only.
	Districts int

	// RangeM overrides the radio model's 50%-reception distance when
	// positive (0 keeps radio.DefaultParams).
	RangeM float64

	// Backplane overrides; zero values keep backplane.DefaultConfig.
	BackplaneRateBps float64
	BackplaneDelay   time.Duration
	BackplaneLoss    float64

	// App selects the per-vehicle application workload (internal/workload):
	// cbr (the constant-rate fleet probe, the zero value), tcp, voip, web,
	// or mixed. The remaining fields are per-app knobs; zero values keep
	// workload.DefaultConfig.
	App workload.Kind
	// AppXferBytes overrides the TCP transfer size in bytes.
	AppXferBytes int
	// AppThink overrides the web workload's mean think time.
	AppThink time.Duration
	// AppMix weights the cbr:tcp:voip:web split for app=mixed (all-zero
	// means even).
	AppMix [4]int

	// Faults holds the canonical fault-injection spec (internal/fault
	// grammar; "" runs fault-free). Stored canonicalized so Spec stays
	// comparable and equal fault plans always share a cache line.
	Faults string
}

// FaultSpec parses the spec's fault string ("" yields the empty spec).
func (s Spec) FaultSpec() (fault.Spec, error) { return fault.Parse(s.Faults) }

// AppConfig folds the spec's application knobs into a workload config.
func (s Spec) AppConfig() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.App = s.App
	if s.AppXferBytes > 0 {
		cfg.TCP.TransferBytes = s.AppXferBytes
	}
	if s.AppThink > 0 {
		cfg.Web.Think = s.AppThink
	}
	if s.AppMix != ([4]int{}) {
		cfg.Mix = s.AppMix
	}
	return cfg
}

// presets is the named scenario catalogue. Kept in a function so callers
// can never mutate the catalogue through a returned Spec.
func presets() map[string]Spec {
	return map[string]Spec{
		// A compact sanity-scale grid.
		"grid-small": {
			Topology: Grid, BS: 12, Width: 900, Height: 600, JitterM: 25,
			Vehicles: 3, SpeedKmh: 36, RouteStops: 6, DepartStagger: 2 * time.Second,
		},
		// The city-scale reference: 54 basestations, a 24-vehicle fleet.
		"grid-city": {
			Topology: Grid, BS: 54, Width: 2400, Height: 1500, JitterM: 30,
			Vehicles: 24, SpeedKmh: 40, RouteStops: 10, DepartStagger: 2 * time.Second,
		},
		// The metropolitan reference for the radio-scaling sweep: a 484-BS
		// region at grid-city density (≈1.5e-5 BS/m²) probed by a fixed
		// 16-vehicle fleet. Big enough that the channel runs its spatially
		// indexed path (≥ radio.DefaultIndexThreshold nodes).
		"grid-metro": {
			Topology: Grid, BS: 484, Width: 7200, Height: 4500, JitterM: 30,
			Vehicles: 16, SpeedKmh: 40, RouteStops: 10, DepartStagger: 200 * time.Millisecond,
		},
		// Four radio-isolated districts at grid-city density, each with its
		// own gateway — the reference scenario for sharded execution
		// (scale-shard): big enough for the indexed radio path (232 nodes)
		// and structurally partitionable at 1, 2 or 4 shards.
		"metro-districts": {
			Topology: Grid, BS: 216, Districts: 4, Width: 14400, Height: 1500, JitterM: 30,
			Vehicles: 16, SpeedKmh: 40, RouteStops: 10, DepartStagger: 200 * time.Millisecond,
		},
		// A corridor deployment: basestations along a highway.
		"strip-highway": {
			Topology: Strip, BS: 40, Width: 6000, Height: 400, JitterM: 20,
			Vehicles: 16, SpeedKmh: 80, RouteStops: 4, DepartStagger: 3 * time.Second,
		},
		// Organic hot-spot coverage around a town.
		"cluster-town": {
			Topology: Cluster, BS: 50, Clusters: 7, Width: 2600, Height: 1600, JitterM: 90,
			Vehicles: 20, SpeedKmh: 40, RouteStops: 9, DepartStagger: 2 * time.Second,
		},
		// Short exploration aliases: compact instances of each topology for
		// quick command lines like `vifi-sim -scenario grid,app=voip`.
		"grid": {
			Topology: Grid, BS: 12, Width: 900, Height: 600, JitterM: 25,
			Vehicles: 3, SpeedKmh: 36, RouteStops: 6, DepartStagger: 2 * time.Second,
		},
		"strip": {
			Topology: Strip, BS: 16, Width: 2400, Height: 300, JitterM: 20,
			Vehicles: 6, SpeedKmh: 60, RouteStops: 4, DepartStagger: 2 * time.Second,
		},
		"cluster": {
			Topology: Cluster, BS: 18, Clusters: 4, Width: 1500, Height: 1000, JitterM: 80,
			Vehicles: 6, SpeedKmh: 40, RouteStops: 8, DepartStagger: 2 * time.Second,
		},
	}
}

// Presets lists the preset names in a stable order.
func Presets() []string {
	m := presets()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Preset returns a named preset spec.
func Preset(name string) (Spec, error) {
	if s, ok := presets()[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("scenario: unknown preset %q (have %s)", name, strings.Join(Presets(), ", "))
}

// Parse builds a Spec from the cmd-line syntax: a preset name followed by
// optional key=value overrides, comma-separated. Example:
//
//	grid-city,vehicles=30,bs=72,w=3000,stagger=5s
//
// Keys: bs, clusters, w, h, jitter, vehicles, districts, speed, stops,
// stagger, range, bprate, bpdelay, bploss, topology, app, xfer, think,
// mix, faults.
func Parse(s string) (Spec, error) {
	parts := strings.Split(s, ",")
	name := strings.TrimSpace(parts[0])
	spec, err := Preset(name)
	if err != nil {
		return Spec{}, err
	}
	for _, kv := range parts[1:] {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("scenario: override %q is not key=value", kv)
		}
		if err := spec.set(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
			return Spec{}, err
		}
	}
	return spec, spec.Validate()
}

// set applies one key=value override.
func (s *Spec) set(key, val string) error {
	geti := func() (int, error) { return strconv.Atoi(val) }
	getf := func() (float64, error) { return strconv.ParseFloat(val, 64) }
	getd := func() (time.Duration, error) { return time.ParseDuration(val) }
	var err error
	switch key {
	case "topology":
		switch val {
		case "grid":
			s.Topology = Grid
		case "strip":
			s.Topology = Strip
		case "cluster":
			s.Topology = Cluster
		default:
			return fmt.Errorf("scenario: unknown topology %q (grid, strip, cluster)", val)
		}
	case "bs":
		s.BS, err = geti()
	case "clusters":
		s.Clusters, err = geti()
	case "w":
		s.Width, err = getf()
	case "h":
		s.Height, err = getf()
	case "jitter":
		s.JitterM, err = getf()
	case "vehicles":
		s.Vehicles, err = geti()
	case "districts":
		s.Districts, err = geti()
	case "speed":
		s.SpeedKmh, err = getf()
	case "stops":
		s.RouteStops, err = geti()
	case "stagger":
		s.DepartStagger, err = getd()
	case "range":
		s.RangeM, err = getf()
	case "bprate":
		s.BackplaneRateBps, err = getf()
	case "bpdelay":
		s.BackplaneDelay, err = getd()
	case "bploss":
		s.BackplaneLoss, err = getf()
	case "app":
		s.App, err = workload.ParseKind(val)
	case "xfer":
		s.AppXferBytes, err = geti()
	case "think":
		s.AppThink, err = getd()
	case "mix":
		s.AppMix, err = parseMix(val)
	case "faults":
		// Stored in canonical form (fault.Canonical re-serializes), so two
		// spellings of the same plan share one Key. Note the fault grammar
		// is colon/semicolon-based — no commas — exactly so it embeds in
		// this comma-separated override list.
		s.Faults, err = fault.Canonical(val)
	default:
		return fmt.Errorf("scenario: unknown key %q", key)
	}
	if err != nil {
		return fmt.Errorf("scenario: bad value for %s: %v", key, err)
	}
	return nil
}

// parseMix parses the cbr:tcp:voip:web weight syntax, e.g. "1:2:1:0".
func parseMix(val string) ([4]int, error) {
	var mix [4]int
	parts := strings.Split(val, ":")
	if len(parts) != 4 {
		return mix, fmt.Errorf("want cbr:tcp:voip:web weights, got %q", val)
	}
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return mix, fmt.Errorf("bad mix weight %q", p)
		}
		mix[i] = w
	}
	if mix == ([4]int{}) {
		return mix, fmt.Errorf("mix weights are all zero")
	}
	return mix, nil
}

// Validate reports the first configuration error.
func (s Spec) Validate() error {
	switch {
	case s.BS < 1:
		return fmt.Errorf("scenario: bs = %d, need ≥ 1", s.BS)
	case s.Vehicles < 1:
		return fmt.Errorf("scenario: vehicles = %d, need ≥ 1", s.Vehicles)
	case s.Width <= 0 || s.Height <= 0:
		return fmt.Errorf("scenario: region %gx%g must be positive", s.Width, s.Height)
	case s.SpeedKmh <= 0:
		return fmt.Errorf("scenario: speed %g km/h must be positive", s.SpeedKmh)
	case s.RouteStops < 2:
		return fmt.Errorf("scenario: stops = %d, need ≥ 2", s.RouteStops)
	case s.JitterM < 0 || s.RangeM < 0 || s.BackplaneLoss < 0 || s.BackplaneLoss > 1:
		return fmt.Errorf("scenario: negative jitter/range or loss outside [0,1]")
	case s.Topology == Cluster && s.Clusters < 1:
		return fmt.Errorf("scenario: cluster topology needs clusters ≥ 1")
	case s.DepartStagger < 0:
		return fmt.Errorf("scenario: stagger must be ≥ 0")
	case s.Districts < 0:
		return fmt.Errorf("scenario: districts = %d, need ≥ 0", s.Districts)
	case s.Districts >= 2 && s.Topology != Grid:
		return fmt.Errorf("scenario: districts need grid topology, have %s", s.Topology)
	case s.Districts >= 2 && s.BS < s.Districts:
		return fmt.Errorf("scenario: bs = %d < districts = %d", s.BS, s.Districts)
	case s.Districts >= 2 && s.Vehicles < s.Districts:
		return fmt.Errorf("scenario: vehicles = %d < districts = %d", s.Vehicles, s.Districts)
	case s.App < workload.CBRKind || s.App > workload.MixedKind:
		return fmt.Errorf("scenario: app %d out of range", int(s.App))
	case s.AppXferBytes < 0 || s.AppThink < 0:
		return fmt.Errorf("scenario: negative app transfer size or think time")
	case s.AppMix[0] < 0 || s.AppMix[1] < 0 || s.AppMix[2] < 0 || s.AppMix[3] < 0:
		return fmt.Errorf("scenario: negative mix weight")
	}
	if s.Faults != "" {
		if _, err := fault.Parse(s.Faults); err != nil {
			return err
		}
	}
	return nil
}

// Key returns the canonical spec string: every field in a fixed order.
// Equal specs produce equal keys and vice versa, so the key is the
// experiment engine's run-cache discriminator (and the workload drivers'
// RNG stream label) — two specs differing in any knob, including the
// application fields, never share a cache line or a driver stream.
func (s Spec) Key() string {
	key := fmt.Sprintf("%s app=%s xfer=%d think=%s mix=%d:%d:%d:%d",
		s.GeomKey(), s.App, s.AppXferBytes, s.AppThink,
		s.AppMix[0], s.AppMix[1], s.AppMix[2], s.AppMix[3])
	// The faults fragment joins the key only when a plan is configured:
	// fault-free specs keep the exact historical key, so every existing
	// golden, cache line and RNG stream label is untouched.
	if s.Faults != "" {
		key += " faults=" + s.Faults
	}
	return key
}

// GeomKey is the geometry-only spec string: every field that shapes the
// deployment (topology, region, fleet, radio, backplane) and none of the
// application knobs. Generation draws its RNG streams from this key, so
// changing the workload — app kind, transfer size, mix — never
// regenerates the city: comparisons across workloads run on identical
// basestations and routes.
func (s Spec) GeomKey() string {
	key := fmt.Sprintf("%s bs=%d cl=%d w=%g h=%g j=%g v=%d spd=%g stops=%d stg=%s rng=%g bpr=%g bpd=%s bpl=%g",
		s.Topology, s.BS, s.Clusters, s.Width, s.Height, s.JitterM,
		s.Vehicles, s.SpeedKmh, s.RouteStops, s.DepartStagger,
		s.RangeM, s.BackplaneRateBps, s.BackplaneDelay, s.BackplaneLoss)
	// The districts fragment joins the key only when the region is
	// actually split, so every pre-existing spec keeps its exact
	// historical key (goldens, cache lines, RNG stream labels).
	if s.Districts >= 2 {
		key += fmt.Sprintf(" d=%d", s.Districts)
	}
	return key
}

// String implements fmt.Stringer.
func (s Spec) String() string { return s.Key() }
