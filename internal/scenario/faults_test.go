package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/vanlan/vifi/internal/core"
	"github.com/vanlan/vifi/internal/fault"
	"github.com/vanlan/vifi/internal/sim"
)

// TestParseFaultsKnob pins the faults= override: preset names and raw
// clauses are stored canonicalized (the canonical string doubles as the
// run-cache fragment and the fault-stream label), and bad specs are
// rejected at Parse time with the parser's key list intact.
func TestParseFaultsKnob(t *testing.T) {
	s, err := Parse("grid-small,faults=bs-flaky")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := fault.Canonical(fault.Preset("bs-flaky"))
	if s.Faults != want {
		t.Errorf("preset not canonicalized: %q, want %q", s.Faults, want)
	}
	if _, err := s.FaultSpec(); err != nil {
		t.Errorf("stored canonical spec does not re-parse: %v", err)
	}

	if _, err := Parse("grid-small,faults=warp:mtbf=1s"); err == nil ||
		!strings.Contains(err.Error(), "bs, bp, blackout") {
		t.Errorf("unknown layer error missing the valid-layer list: %v", err)
	}
	if _, err := Parse("grid-small,faults=bs:wat=1s"); err == nil ||
		!strings.Contains(err.Error(), "mtbf") {
		t.Errorf("unknown key error missing the valid-key list: %v", err)
	}
}

// TestKeyFaultsFragment pins the golden-safety contract at the key
// layer: a fault-free spec's Key is byte-identical to the historical
// format (no faults fragment at all), and a faulted spec appends
// exactly one discriminating fragment while leaving the geometry key —
// and so the generated city — untouched.
func TestKeyFaultsFragment(t *testing.T) {
	base, _ := Parse("grid-city")
	if strings.Contains(base.Key(), "faults") {
		t.Fatalf("fault-free key mentions faults: %q", base.Key())
	}
	faulted, err := Parse("grid-city,faults=bs:mtbf=2m:mttr=10s")
	if err != nil {
		t.Fatal(err)
	}
	if want := base.Key() + " faults=" + faulted.Faults; faulted.Key() != want {
		t.Errorf("faulted key = %q, want %q", faulted.Key(), want)
	}
	if base.GeomKey() != faulted.GeomKey() {
		t.Error("GeomKey depends on the faults knob; faulted runs would regenerate the city")
	}
}

// TestInstallFaultsDrivesOutages is the wiring smoke test: a scripted
// timeline against a built cell takes the targeted basestation down
// (radio and backplane) inside the window and restores both afterwards.
func TestInstallFaultsDrivesOutages(t *testing.T) {
	k := sim.NewKernel(7)
	spec, _ := Parse("grid-small,vehicles=2")
	cell, _, err := BuildCell(k, spec, core.DefaultCellOptions())
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fault.Parse("bs:at=1s-2s:node=0")
	if err != nil {
		t.Fatal(err)
	}
	tl := fault.Plan(k, "smoke", fs, 3*time.Second, len(cell.BSes), len(cell.Vehicles))
	if len(tl.Outages) != 1 {
		t.Fatalf("planned %d outages, want 1", len(tl.Outages))
	}
	var restoredAt time.Duration
	InstallFaults(k, cell, &tl, func(at time.Duration) { restoredAt = at })

	id := cell.BSes[0].MAC().ID()
	addr := cell.BSes[0].Addr()
	k.At(1500*time.Millisecond, func() {
		if !cell.Channel.Down(id) {
			t.Error("radio not muted inside the outage window")
		}
		if !cell.Backplane.IsDown(addr) {
			t.Error("backplane not partitioned inside the outage window")
		}
	})
	k.RunUntil(3 * time.Second)
	if cell.Channel.Down(id) || cell.Backplane.IsDown(addr) {
		t.Error("basestation not restored after the outage window")
	}
	if restoredAt != 2*time.Second {
		t.Errorf("onRestore fired at %v, want 2s", restoredAt)
	}
}
