package scenario

import (
	"time"

	"github.com/vanlan/vifi/internal/backplane"
	"github.com/vanlan/vifi/internal/core"
	"github.com/vanlan/vifi/internal/fault"
	"github.com/vanlan/vifi/internal/sim"
)

// faultDriver applies a fault timeline to a running cell. Overlapping
// windows against the same target compose through depth counters: only
// the 0→1 transition takes the target down and only the final 1→0
// transition restores it, so two processes downing the same basestation
// never double-restart it.
type faultDriver struct {
	c         *core.Cell
	tl        *fault.Timeline
	bsDepth   []int
	vehDepth  []int
	bpDepth   int
	onRestore func(at time.Duration)
}

// InstallFaults schedules a planned timeline against the cell: every
// outage begins and ends at its planned instant. Basestation outages
// mute the radio (beacons fall silent, nothing is heard), partition the
// backplane port, and restart the protocol stack cold when the window
// closes. Blackouts mute a vehicle's radio only — a tunnel does not
// reboot the device. Brownouts degrade the whole backplane. onRestore
// (may be nil) fires at the end of every outage window, after the
// restore took effect — the recovery-time metric anchors on it.
//
// Determinism: the timeline is pre-sorted and events are scheduled here
// in that order, so equal-timestamp fault events always fire in timeline
// order regardless of how the plan was produced.
//
// Sharded runs install the same plan on every shard cell: depth counters
// advance globally in every shard (the timeline is identical), actions on
// protocol state apply only where the node is local, and backplane
// SetDown flips the remote mirrors everywhere so sending-side checks stay
// in lockstep with the owning shard.
func InstallFaults(k *sim.Kernel, c *core.Cell, tl *fault.Timeline, onRestore func(at time.Duration)) {
	d := &faultDriver{
		c:         c,
		tl:        tl,
		bsDepth:   make([]int, len(c.BSes)),
		vehDepth:  make([]int, len(c.Vehicles)),
		onRestore: onRestore,
	}
	for _, o := range tl.Outages {
		o := o
		k.At(o.Start, func() { d.begin(o) })
		k.At(o.End, func() { d.end(o) })
	}
}

func (d *faultDriver) begin(o fault.Outage) {
	c := d.c
	switch o.Layer {
	case fault.LayerBS:
		if o.Node >= len(c.BSes) {
			return
		}
		d.bsDepth[o.Node]++
		if d.bsDepth[o.Node] == 1 {
			if c.LocalBS(o.Node) {
				c.Channel.SetDown(c.BSRadioIDs[o.Node])
			}
			c.Backplane.SetDown(uint16(c.BSRadioIDs[o.Node]), true)
		}
	case fault.LayerBP:
		d.bpDepth++
		// Later-starting overlapping brownouts override the knobs; the
		// plane clears only when every window has ended. Deterministic
		// because outages are applied in timeline order.
		p := d.tl.Spec.Procs[o.Proc]
		c.Backplane.SetBrownout(backplane.Brownout{
			RateFactor: p.RateFactor,
			ExtraDelay: p.ExtraDelay,
			ExtraLoss:  p.ExtraLoss,
		})
	case fault.LayerBlackout:
		if o.Node >= len(c.Vehicles) {
			return
		}
		d.vehDepth[o.Node]++
		if d.vehDepth[o.Node] == 1 && c.LocalVehicle(o.Node) {
			c.Channel.SetDown(c.VehRadioIDs[o.Node])
		}
	}
}

func (d *faultDriver) end(o fault.Outage) {
	c := d.c
	switch o.Layer {
	case fault.LayerBS:
		if o.Node >= len(c.BSes) {
			return
		}
		d.bsDepth[o.Node]--
		if d.bsDepth[o.Node] > 0 {
			return
		}
		// Restart order: cold protocol state first, then reconnect, so
		// the first frames the revived node handles meet fresh state.
		if c.LocalBS(o.Node) {
			c.BSes[o.Node].ColdRestart()
		}
		c.Backplane.SetDown(uint16(c.BSRadioIDs[o.Node]), false)
		if c.LocalBS(o.Node) {
			c.Channel.SetUp(c.BSRadioIDs[o.Node])
		}
	case fault.LayerBP:
		d.bpDepth--
		if d.bpDepth > 0 {
			return
		}
		c.Backplane.ClearBrownout()
	case fault.LayerBlackout:
		if o.Node >= len(c.Vehicles) {
			return
		}
		d.vehDepth[o.Node]--
		if d.vehDepth[o.Node] > 0 {
			return
		}
		if c.LocalVehicle(o.Node) {
			c.Channel.SetUp(c.VehRadioIDs[o.Node])
		}
	}
	if d.onRestore != nil {
		d.onRestore(d.c.K.Now())
	}
}
