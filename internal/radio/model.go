// Package radio simulates the vehicular WiFi channel of the ViFi paper:
// distance-dependent mean loss, short-timescale bursty losses, unpredictable
// gray periods, independent fading across links, airtime at a fixed bitrate,
// half-duplex radios, carrier sense and collisions.
//
// The channel reproduces the four statistical properties the paper's
// measurement study rests on (§3.4):
//
//  1. Mean reception probability falls off with distance (log-distance path
//     loss pushed through a logistic reception curve, plus static per-link
//     shadowing).
//  2. Losses are bursty at 10–100 ms timescales: each link runs an
//     independent continuous-time Gilbert–Elliott process (Fig 6a).
//  3. Losses are roughly independent across links: every link owns an
//     independently seeded process (Fig 6b).
//  4. Gray periods: second-scale sharp connectivity drops that strike even
//     close to a basestation (§3.3).
//
// Links can alternatively be driven from a per-second loss-rate trace
// (the DieselNet methodology, §5.1) via TraceModel in this package's
// sibling trace support.
package radio

import (
	"math"
	"time"

	"github.com/vanlan/vifi/internal/sim"
)

// Params collects the channel model constants. Zero value is not useful;
// start from DefaultParams.
type Params struct {
	// BitrateBps is the over-the-air bitrate. The paper fixes 1 Mbps
	// (802.11b broadcast, maximum range).
	BitrateBps float64
	// FrameOverheadBytes approximates PHY/MAC framing added to each payload.
	FrameOverheadBytes int

	// D50 is the distance in meters at which mean reception is 50 %.
	D50 float64
	// FalloffM controls how fast reception decays around D50 (logistic
	// slope, meters).
	FalloffM float64
	// PMax is the reception probability at distance zero in the good state.
	PMax float64
	// ShadowSigmaM is the standard deviation (meters of D50 shift) of
	// per-link static shadowing.
	ShadowSigmaM float64

	// Gilbert–Elliott burst process: exponential sojourns.
	GoodMean time.Duration // mean time in the good state
	BadMean  time.Duration // mean time in the bad state
	GoodMult float64       // reception multiplier while good
	BadMult  float64       // reception multiplier while bad

	// Gray periods: exponential gaps, uniform durations.
	GrayGapMean time.Duration // mean time between gray periods per link
	GrayMin     time.Duration // minimum gray period duration
	GrayMax     time.Duration // maximum gray period duration
	GrayMult    float64       // reception multiplier during a gray period

	// Carrier sense and collisions.
	SenseRangeM float64 // distance within which a transmitter is "heard busy"
	CaptureDB   float64 // power advantage (dB) letting a frame survive overlap

	// MaxRangeM is the hard reception cutoff in meters used by the
	// channel's spatially indexed hot path: above the index threshold,
	// receivers farther than the cutoff are skipped entirely. 0 derives
	// the cutoff from the fading model (see CutoffM). The cutoff only
	// takes effect on the indexed path — below the threshold the channel
	// sweeps every node exactly as before, so existing seeded runs are
	// untouched.
	MaxRangeM float64
	// IndexThresholdNodes is the attached-node count at which the channel
	// switches from the dense full-sweep path to the spatial grid index
	// (and from an eager dense link table to lazy per-pair links).
	// 0 means DefaultIndexThreshold.
	IndexThresholdNodes int

	// TxPowerDBm and PathLossExp shape the synthetic RSSI readings.
	TxPowerDBm  float64
	PathLossExp float64
	RSSINoiseDB float64
}

// DefaultParams returns the calibrated model. The calibration targets the
// paper's published shapes: ~0.7 unconditional reception near a BS,
// conditional loss after a loss ≫ unconditional (Fig 6a), usable range of
// roughly 150–250 m at 1 Mbps, and gray periods that strike about once a
// minute per link.
func DefaultParams() Params {
	return Params{
		BitrateBps:         1e6,
		FrameOverheadBytes: 58, // PLCP+MAC header+FCS at 1 Mbps, roughly

		D50:          150,
		FalloffM:     40,
		PMax:         0.85,
		ShadowSigmaM: 22,

		GoodMean: 1100 * time.Millisecond,
		BadMean:  200 * time.Millisecond,
		GoodMult: 1.0,
		BadMult:  0.08,

		GrayGapMean: 26 * time.Second,
		GrayMin:     1 * time.Second,
		GrayMax:     9 * time.Second,
		GrayMult:    0.03,

		SenseRangeM: 320,
		CaptureDB:   10,

		TxPowerDBm:  18,
		PathLossExp: 3.0,
		RSSINoiseDB: 4,
	}
}

// CutoffM returns the effective hard reception cutoff of the channel:
// MaxRangeM when set, otherwise the reach of the fading model — the
// distance at which mean reception falls below ~1e-9 even for a link
// shadowed four sigmas in the transmitter's favor. Beyond this distance
// a skipped reception draw is a guaranteed loss, which is what makes the
// indexed Broadcast path safe to cut off.
func (p *Params) CutoffM() float64 {
	if p.MaxRangeM > 0 {
		return p.MaxRangeM
	}
	if p.FalloffM <= 0 || p.PMax <= 0 {
		return 0 // degenerate model: no finite reach derivable
	}
	return p.D50 + 4*p.ShadowSigmaM + p.FalloffM*math.Log(p.PMax*1e9)
}

// Airtime returns the on-air duration of a frame with the given payload
// size under p's bitrate and framing overhead.
func (p Params) Airtime(payloadBytes int) time.Duration {
	bits := float64(payloadBytes+p.FrameOverheadBytes) * 8
	return time.Duration(bits / p.BitrateBps * float64(time.Second))
}

// meanReception returns the distance-driven mean reception probability for
// a link whose shadowing shifts D50 by shadowM meters.
func (p *Params) meanReception(dist, shadowM float64) float64 {
	d50 := p.D50 + shadowM
	if d50 < 10 {
		d50 = 10
	}
	return p.PMax / (1 + math.Exp((dist-d50)/p.FalloffM))
}

// rssi returns a synthetic RSSI (dBm) at the given distance.
func (p *Params) rssi(dist float64, noise float64) float64 {
	if dist < 1 {
		dist = 1
	}
	return p.TxPowerDBm - 40 - 10*p.PathLossExp*math.Log10(dist) + noise
}

// LinkModel computes the instantaneous reception probability of a directed
// link. Implementations must be deterministic given their construction
// parameters: the channel consults them at arbitrary, monotonically
// non-decreasing times.
type LinkModel interface {
	// ReceiveProb returns the probability that a frame transmitted at
	// time t over a path of dist meters is received.
	ReceiveProb(t time.Duration, dist float64) float64
}

// Ranged is an optional LinkModel extension: a model whose ReceiveProb
// is negligible (≲1e-9) beyond some distance advertises that reach so
// the channel's indexed path can skip the link — and its RNG draws —
// without consulting the model. Models with no finite reach (FixedLink,
// ScheduleLink) don't implement it; a channel built from a custom
// factory therefore only runs the indexed path when Params.MaxRangeM
// states the cutoff explicitly (see NewChannel).
type Ranged interface {
	// MaxRangeM returns the distance in meters beyond which reception is
	// effectively impossible on this link.
	MaxRangeM() float64
}

// geState is a continuous-time two-state Markov modulator advanced lazily.
type geState struct {
	rng     *sim.RNG
	good    bool
	until   time.Duration // current sojourn ends at this time
	gMean   float64       // seconds
	bMean   float64
	started bool
}

func newGEState(rng *sim.RNG, goodMean, badMean time.Duration) *geState {
	return &geState{
		rng:   rng,
		gMean: goodMean.Seconds(),
		bMean: badMean.Seconds(),
	}
}

// at advances the modulator to time t and reports whether the link is in
// the good state. Calls must use non-decreasing t.
func (g *geState) at(t time.Duration) bool {
	if !g.started {
		g.started = true
		// Start in the stationary distribution.
		g.good = g.rng.Float64() < g.gMean/(g.gMean+g.bMean)
		g.until = g.sojourn(0)
	}
	for t >= g.until {
		g.good = !g.good
		g.until = g.sojourn(g.until)
	}
	return g.good
}

func (g *geState) sojourn(from time.Duration) time.Duration {
	mean := g.bMean
	if g.good {
		mean = g.gMean
	}
	return from + time.Duration(g.rng.ExpFloat64()*mean*float64(time.Second))
}

// grayState produces gray periods: exponential gaps, uniform durations.
type grayState struct {
	rng      *sim.RNG
	inGray   bool
	until    time.Duration
	gapMean  float64 // seconds
	durMin   float64
	durMax   float64
	started  bool
	episodes int
}

func newGrayState(rng *sim.RNG, gapMean, durMin, durMax time.Duration) *grayState {
	return &grayState{
		rng:     rng,
		gapMean: gapMean.Seconds(),
		durMin:  durMin.Seconds(),
		durMax:  durMax.Seconds(),
	}
}

func (g *grayState) at(t time.Duration) bool {
	if !g.started {
		g.started = true
		g.inGray = false
		g.until = g.next(0)
	}
	for t >= g.until {
		g.inGray = !g.inGray
		if g.inGray {
			g.episodes++
		}
		g.until = g.next(g.until)
	}
	return g.inGray
}

func (g *grayState) next(from time.Duration) time.Duration {
	var d float64
	if g.inGray {
		d = g.durMin + g.rng.Float64()*(g.durMax-g.durMin)
	} else {
		d = g.rng.ExpFloat64() * g.gapMean
	}
	return from + time.Duration(d*float64(time.Second))
}

// FadingLink is the full statistical link model: distance mean × GE burst
// modulation × gray periods, with static per-link shadowing.
type FadingLink struct {
	p      Params
	shadow float64
	ge     *geState
	gray   *grayState
}

// NewFadingLink builds an independent link model. rng must be a stream
// private to this link (see sim.Kernel.RNG).
func NewFadingLink(p Params, rng *sim.RNG) *FadingLink {
	return &FadingLink{
		p:      p,
		shadow: rng.NormFloat64() * p.ShadowSigmaM,
		ge:     newGEState(rng, p.GoodMean, p.BadMean),
		gray:   newGrayState(rng, p.GrayGapMean, p.GrayMin, p.GrayMax),
	}
}

// ReceiveProb implements LinkModel.
func (l *FadingLink) ReceiveProb(t time.Duration, dist float64) float64 {
	pr := l.p.meanReception(dist, l.shadow)
	if l.ge.at(t) {
		pr *= l.p.GoodMult
	} else {
		pr *= l.p.BadMult
	}
	if l.gray.at(t) {
		pr *= l.p.GrayMult
	}
	if pr > 1 {
		pr = 1
	}
	return pr
}

// MaxRangeM implements Ranged: beyond this distance the link's mean
// reception is below ~1e-9 given its own shadowing, so skipping the
// reception draw is indistinguishable from drawing a guaranteed loss.
func (l *FadingLink) MaxRangeM() float64 {
	return l.p.D50 + l.shadow + l.p.FalloffM*math.Log(l.p.PMax*1e9)
}

// GrayEpisodes reports how many gray periods this link has entered so far
// (diagnostic, used by tests).
func (l *FadingLink) GrayEpisodes() int { return l.gray.episodes }

// Shadow returns the link's static shadowing offset in meters of D50 shift.
func (l *FadingLink) Shadow() float64 { return l.shadow }

// FixedLink is a LinkModel with a constant reception probability,
// independent of time and distance. Used by unit tests and by ideal-link
// backplane emulation.
type FixedLink float64

// ReceiveProb implements LinkModel.
func (f FixedLink) ReceiveProb(time.Duration, float64) float64 { return float64(f) }

// ScheduleLink drives reception probability from a per-second schedule
// (the paper's trace-driven methodology, §5.1: "The beacon loss ratio from
// a BS to the vehicle in each one-second interval is used as the packet
// loss rate"). Seconds beyond the schedule yield probability zero.
type ScheduleLink struct {
	// PerSecond[i] is the reception probability during second i.
	PerSecond []float64
}

// ReceiveProb implements LinkModel.
func (s *ScheduleLink) ReceiveProb(t time.Duration, _ float64) float64 {
	i := int(t / time.Second)
	if i < 0 || i >= len(s.PerSecond) {
		return 0
	}
	return s.PerSecond[i]
}
