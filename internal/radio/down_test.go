package radio

import (
	"testing"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

type flagHandler struct{ fired bool }

func (f *flagHandler) OnEvent() { f.fired = true }

func TestSetDownMutesTxAndRx(t *testing.T) {
	k := sim.NewKernel(20)
	c := perfectChannel(k)
	var rxa, rxb collector
	a := c.Attach("a", mobility.Fixed{}, &rxa)
	b := c.Attach("b", mobility.Fixed{X: 10}, &rxb)

	c.SetDown(b)
	if !c.Down(b) {
		t.Fatal("Down(b) false after SetDown")
	}
	air := c.Broadcast(a, []byte("x"), nil)
	if air <= 0 {
		t.Fatal("Broadcast returned no airtime")
	}
	k.Run()
	if len(rxb.frames) != 0 {
		t.Error("down node received a frame")
	}

	// A down transmitter puts nothing on the air but its txDone still fires.
	c.SetDown(a)
	done := &flagHandler{}
	c.Broadcast(a, []byte("y"), done)
	if c.Busy(b) {
		t.Error("muted transmission occupies the medium")
	}
	k.Run()
	if !done.fired {
		t.Error("txDone did not fire for a muted broadcast")
	}
	if len(rxb.frames) != 0 {
		t.Error("muted broadcast delivered a frame")
	}
	if got := c.Stats().Transmissions; got != 1 {
		t.Errorf("muted broadcast counted as transmission: %d, want 1", got)
	}

	// SetUp restores both directions.
	c.SetUp(a)
	c.SetUp(b)
	c.Broadcast(a, []byte("z"), nil)
	k.Run()
	if len(rxb.frames) != 1 {
		t.Errorf("restored link delivered %d frames, want 1", len(rxb.frames))
	}
	if len(rxa.frames) != 0 {
		t.Error("sender heard itself")
	}
}

func TestSetDownVoidsInFlightReception(t *testing.T) {
	k := sim.NewKernel(21)
	c := perfectChannel(k)
	var rx collector
	a := c.Attach("a", mobility.Fixed{}, nil)
	b := c.Attach("b", mobility.Fixed{X: 10}, &rx)
	c.Broadcast(a, make([]byte, 1000), nil)
	// Crash the receiver mid-frame: the frame must not be delivered.
	k.After(c.P.Airtime(1000)/2, func() { c.SetDown(b) })
	k.Run()
	if len(rx.frames) != 0 {
		t.Errorf("reception in flight at crash time was delivered: %d frames", len(rx.frames))
	}
}

func TestSetDownBusySensesIdle(t *testing.T) {
	k := sim.NewKernel(22)
	c := perfectChannel(k)
	a := c.Attach("a", mobility.Fixed{}, nil)
	b := c.Attach("b", mobility.Fixed{X: 100}, nil)
	c.Broadcast(a, make([]byte, 1000), nil)
	if !c.Busy(b) {
		t.Fatal("live node should sense the medium busy")
	}
	c.SetDown(b)
	if c.Busy(b) {
		t.Error("down node senses the medium busy")
	}
	c.SetUp(b)
	if !c.Busy(b) {
		t.Error("restored node no longer senses the busy medium")
	}
	k.Run()
}

// receptionLog drives a fixed broadcast schedule from src and returns the
// exact reception trace (time, source, RSSI) observed at the listening
// node. Fading links and RSSI noise make every delivery consume RNG
// draws, so any stream perturbation shows up as a trace difference.
func receptionLog(t *testing.T, threshold int, downMid NodeID) []RxInfo {
	t.Helper()
	k := sim.NewKernel(23)
	p := DefaultParams()
	p.IndexThresholdNodes = threshold
	c := NewChannel(k, p, nil) // default fading links: loss+noise draws per delivery
	var rx collector
	src := c.Attach("src", mobility.Fixed{}, nil)
	c.Attach("listener", mobility.Fixed{X: 30}, &rx)
	bystander := c.Attach("bystander", mobility.Fixed{X: 60}, nil)

	const frames = 400
	const gap = 20 * time.Millisecond
	for i := 0; i < frames; i++ {
		at := time.Duration(i) * gap
		k.At(at, func() { c.Broadcast(src, []byte("beacon"), nil) })
	}
	if downMid == bystander {
		// Crash the bystander for a mid-run window.
		k.At(2*time.Second, func() { c.SetDown(bystander) })
		k.At(5*time.Second, func() { c.SetUp(bystander) })
	}
	k.Run()
	return rx.frames
}

// TestSetDownStreamStability is the satellite contract: muting a
// bystander must leave every live pair's RNG draws untouched, so the
// listener's reception trace is byte-identical with and without the
// bystander's outage — on both the dense full-sweep path and the
// spatially indexed path.
func TestSetDownStreamStability(t *testing.T) {
	cases := []struct {
		name      string
		threshold int
	}{
		{"dense", 1 << 20}, // threshold above population: full sweep
		{"indexed", 2},     // threshold below population: grid path
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := receptionLog(t, tc.threshold, NodeID(-1))
			faulted := receptionLog(t, tc.threshold, NodeID(2))
			if len(base) == 0 {
				t.Fatal("baseline run delivered nothing; test is vacuous")
			}
			if len(base) != len(faulted) {
				t.Fatalf("trace length changed: %d vs %d receptions", len(base), len(faulted))
			}
			for i := range base {
				if base[i] != faulted[i] {
					t.Fatalf("reception %d diverged: %+v vs %+v", i, base[i], faulted[i])
				}
			}
		})
	}
}
