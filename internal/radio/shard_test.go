package radio

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

// runStriped drives a deployment spanning many grid columns — a fixed
// lattice plus route movers that cross stripe boundaries — with
// overlapping transmissions, fault toggles and mid-run down radios, and
// returns every node's full delivery log plus the channel stats. lanes=1
// runs the serial indexed path; lanes>1 runs the same workload sharded.
// The two must be byte-identical: same kernel, same event order, same
// per-link streams, commits in candidate order.
func runStriped(t *testing.T, lanes int) ([][]RxInfo, Stats) {
	t.Helper()
	const fixed = 110
	const movers = 10
	const n = fixed + movers
	k := sim.NewKernel(77)
	p := DefaultParams()
	p.IndexThresholdNodes = 64
	c := NewChannel(k, p, nil) // independent fading links, real RNG streams
	logs := make([][]RxInfo, n)
	attach := func(i int, m mobility.Mover) {
		c.Attach(fmt.Sprint(i), m, ReceiverFunc(func(_ []byte, info RxInfo) {
			logs[i] = append(logs[i], info)
		}))
	}
	// Lattice over ~8 km of X — seven grid columns at the default cutoff —
	// two rows deep, so broadcasts reach a few dozen candidates each.
	for i := 0; i < fixed; i++ {
		attach(i, mobility.Fixed(mobility.Point{X: float64(i%55) * 150, Y: float64(i/55) * 300}))
	}
	// Movers sweep back and forth across stripe boundaries.
	for i := 0; i < movers; i++ {
		x0 := float64(i) * 700
		route := mobility.NewRoute([]mobility.Point{{X: x0}, {X: x0 + 2000}}, 60, true)
		attach(fixed+i, &mobility.RouteMover{Route: route})
	}
	if lanes > 1 {
		if got := c.StartShards(lanes); got != lanes {
			t.Fatalf("StartShards(%d) = %d, want %d", lanes, got, lanes)
		}
	}
	payload := make([]byte, 200)
	for step := 0; step < 500; step++ {
		// Deterministic fault toggles: radios go down mid-run (voiding any
		// frame they are receiving) and come back 30 steps later.
		if step%60 == 0 {
			c.SetDown(NodeID((step*11 + 3) % n))
		}
		if step%60 == 30 {
			c.SetUp(NodeID(((step-30)*11 + 3) % n))
		}
		// Two transmitters per step with overlapping airtimes force
		// collision, capture and half-duplex decisions; down sources
		// exercise the muted-transmitter path.
		for _, src := range []NodeID{NodeID((step * 13) % n), NodeID((step*29 + 7) % n)} {
			if !c.Transmitting(src) {
				c.Broadcast(src, payload, nil)
			}
		}
		k.RunUntil(k.Now() + 50*time.Millisecond)
	}
	// Bounded drain: k.Run() would never return — the movers keep the
	// grid-revalidation event rescheduling itself forever. One extra
	// second covers every in-flight delivery.
	k.RunUntil(k.Now() + time.Second)
	st := c.Stats()
	if lanes > 1 {
		var computed, halo uint64
		for i := 0; i < c.ShardLanes(); i++ {
			ls := c.LaneStat(i)
			computed += ls.Computed
			halo += ls.HaloRecv
		}
		if computed == 0 {
			t.Fatal("sharded run computed no deliveries; test is vacuous")
		}
		if halo == 0 {
			t.Fatal("no halo-band traffic: every delivery stayed in its transmitter's stripe, the partition is untested")
		}
		c.StopShards()
		if got := c.Stats(); got != st {
			t.Fatalf("StopShards changed the stats: %+v -> %+v", st, got)
		}
	}
	return logs, st
}

// TestShardedMatchesSerialChannel is the channel-level half of the
// determinism bar: the same city, workload, faults and seeds must produce
// byte-identical delivery logs (sender, timestamp, RSSI, distance — every
// float) and identical channel stats at K ∈ {2, 4, 8} lanes as serially.
func TestShardedMatchesSerialChannel(t *testing.T) {
	serialLogs, serialStats := runStriped(t, 1)
	if serialStats.Deliveries == 0 || serialStats.Collisions == 0 || serialStats.HalfDuplex == 0 {
		t.Fatalf("workload too tame to pin sharding: %+v", serialStats)
	}
	for _, lanes := range []int{2, 4, 8} {
		logs, stats := runStriped(t, lanes)
		if stats != serialStats {
			t.Errorf("lanes=%d stats diverged: %+v vs serial %+v", lanes, stats, serialStats)
		}
		if !reflect.DeepEqual(logs, serialLogs) {
			for i := range logs {
				if !reflect.DeepEqual(logs[i], serialLogs[i]) {
					t.Fatalf("lanes=%d: node %d delivery log diverged (%d vs %d entries)",
						lanes, i, len(logs[i]), len(serialLogs[i]))
				}
			}
		}
	}
}

// TestShardedBelowIndexRefuses pins the no-stripe-plan rule: the full
// sweep has no grid to stripe, so StartShards reports an effective lane
// count of 1 and the channel stays serial.
func TestShardedBelowIndexRefuses(t *testing.T) {
	k := sim.NewKernel(3)
	c := NewChannel(k, DefaultParams(), nil)
	c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 50}, nil)
	if got := c.StartShards(4); got != 1 {
		t.Fatalf("StartShards on a full-sweep channel = %d, want 1", got)
	}
	if c.ShardLanes() != 0 {
		t.Fatal("refused StartShards left the channel sharded")
	}
	c.StopShards() // no-op, must not panic
}

// buildCaptureTie builds the cross-stripe capture-tie geometry: a
// receiver just inside stripe column 1, a strong transmitter 1 m away in
// column 0 (a halo transmitter from the receiver-owning lane's point of
// view) and a weak one 10 m away in column 1. With noise off and
// path-loss exponent 3 the RSSI gap is exactly 30 dB, so CaptureDB=30
// sits precisely on the >= boundary of both capture branches — the tie
// must resolve identically whether the computing lane is local or halo.
func buildCaptureTie(t *testing.T, captureDB float64, lanes int) (*Channel, *sim.Kernel, NodeID, NodeID, *collector) {
	t.Helper()
	k := sim.NewKernel(8)
	p := DefaultParams()
	p.RSSINoiseDB = 0
	p.PathLossExp = 3
	p.CaptureDB = captureDB
	p.MaxRangeM = 400 // grid cell edge 500 m: stripe boundary at X=500
	p.IndexThresholdNodes = 2
	c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
	var rx collector
	strong := c.Attach("strong", mobility.Fixed{X: 499.5}, nil) // column 0
	weak := c.Attach("weak", mobility.Fixed{X: 510.5}, nil)     // column 1
	c.Attach("r", mobility.Fixed{X: 500.5}, &rx)                // column 1
	if lanes > 1 {
		if got := c.StartShards(lanes); got != lanes {
			t.Fatalf("StartShards(%d) = %d", lanes, got)
		}
	}
	return c, k, strong, weak, &rx
}

// TestShardedCaptureTieAcrossStripes replays the exact-margin collision
// cases of TestCaptureMarginBoundary with the two transmitters homed in
// different stripes, serial vs 2 lanes. The strong transmitter's delivery
// is halo traffic (computed by the receiver's lane, stripe 1, for a
// stripe-0 transmitter), so the boundary arithmetic and the displaced-
// frame bookkeeping run on a worker lane — and must still land exactly
// where the serial switch does.
func TestShardedCaptureTieAcrossStripes(t *testing.T) {
	for _, lanes := range []int{1, 2} {
		// New frame exactly CaptureDB stronger than the locked one: captures.
		c, k, strong, weak, rx := buildCaptureTie(t, 30, lanes)
		c.Broadcast(weak, make([]byte, 500), nil)
		c.Broadcast(strong, make([]byte, 500), nil)
		k.Run()
		if len(rx.frames) != 1 || rx.frames[0].From != strong {
			t.Fatalf("lanes=%d exact-margin capture: got %+v, want 1 frame from %v", lanes, rx.frames, strong)
		}
		if got := c.Stats().Collisions; got != 1 {
			t.Errorf("lanes=%d exact-margin capture collisions = %d, want 1", lanes, got)
		}
		if lanes > 1 {
			if sent := c.LaneStat(0).HaloSent; sent == 0 {
				t.Error("strong transmitter's cross-stripe delivery was not accounted as halo traffic")
			}
			c.StopShards()
		}

		// Locked frame exactly CaptureDB stronger than the newcomer: survives.
		c, k, strong, weak, rx = buildCaptureTie(t, 30, lanes)
		c.Broadcast(strong, make([]byte, 500), nil)
		c.Broadcast(weak, make([]byte, 500), nil)
		k.Run()
		if len(rx.frames) != 1 || rx.frames[0].From != strong {
			t.Fatalf("lanes=%d exact-margin survival: got %+v, want 1 frame from %v", lanes, rx.frames, strong)
		}
		if got := c.Stats().Collisions; got != 1 {
			t.Errorf("lanes=%d exact-margin survival collisions = %d, want 1", lanes, got)
		}
		if lanes > 1 {
			c.StopShards()
		}

		// One dB over the gap: mutual destruction, both frames counted.
		c, k, strong, weak, rx = buildCaptureTie(t, 31, lanes)
		c.Broadcast(weak, make([]byte, 500), nil)
		c.Broadcast(strong, make([]byte, 500), nil)
		k.Run()
		if len(rx.frames) != 0 {
			t.Fatalf("lanes=%d mutual destruction delivered %d frames", lanes, len(rx.frames))
		}
		if got := c.Stats().Collisions; got != 2 {
			t.Errorf("lanes=%d mutual destruction collisions = %d, want 2", lanes, got)
		}
		if lanes > 1 {
			c.StopShards()
		}
	}
}

// TestShardedStripeCrossingMidTransmission pins dynamic stripe ownership:
// a vehicle drives across a stripe boundary while the basestation keeps
// the medium occupied with back-to-back frames, so the crossing happens
// mid-transmission and consecutive deliveries to the same vehicle are
// computed by different lanes. Ownership moving between lanes must not
// move a single coin flip: the delivery log equals the serial run's.
func TestShardedStripeCrossingMidTransmission(t *testing.T) {
	run := func(lanes int) []RxInfo {
		k := sim.NewKernel(21)
		p := DefaultParams()
		p.MaxRangeM = 400 // cell edge 500 m: stripe boundary at X=500
		p.IndexThresholdNodes = 2
		c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
		bs := c.Attach("bs", mobility.Fixed{X: 480}, nil)
		var log []RxInfo
		route := mobility.NewRoute([]mobility.Point{{X: 300}, {X: 700}}, 40, true)
		veh := c.Attach("veh", &mobility.RouteMover{Route: route}, ReceiverFunc(func(_ []byte, info RxInfo) {
			log = append(log, info)
		}))
		if lanes > 1 {
			if got := c.StartShards(lanes); got != lanes {
				t.Fatalf("StartShards(%d) = %d", lanes, got)
			}
			// The vehicle starts at X=300 (stripe 0) and crosses X=500 at
			// t=5 s; sample the live ownership on both sides.
			k.At(4*time.Second, func() {
				if got := c.LaneOf(veh); got != 0 {
					t.Errorf("t=4s: vehicle at X≈460 owned by lane %d, want 0", got)
				}
			})
			k.At(8*time.Second, func() {
				if got := c.LaneOf(veh); got != 1 {
					t.Errorf("t=8s: vehicle at X≈620 owned by lane %d, want 1", got)
				}
			})
		}
		// Back-to-back 1000-byte frames keep a transmission in flight at
		// every instant, including the crossing.
		deadline := 12 * time.Second
		payload := make([]byte, 1000)
		var pump func()
		pump = func() {
			if k.Now() >= deadline {
				return
			}
			air := c.Broadcast(bs, payload, nil)
			k.After(air, pump)
		}
		k.After(0, pump)
		// Bounded drain (k.Run() would chase the mover's perpetual
		// grid-revalidation events forever).
		k.RunUntil(deadline + time.Second)
		if lanes > 1 {
			if c.LaneStat(1).HaloRecv == 0 {
				t.Error("no halo deliveries after the crossing: stripe-1 lane never computed for the stripe-0 basestation")
			}
			c.StopShards()
		}
		return log
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("vehicle received nothing; test is vacuous")
	}
	sharded := run(2)
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("delivery logs diverged across the stripe crossing: %d serial vs %d sharded entries", len(serial), len(sharded))
	}
}
