package radio

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

func TestAirtime(t *testing.T) {
	p := DefaultParams()
	// 500 B payload + 58 B overhead at 1 Mbps = 4464 µs.
	got := p.Airtime(500)
	want := time.Duration(float64(558*8) / 1e6 * float64(time.Second))
	if got != want {
		t.Errorf("airtime = %v, want %v", got, want)
	}
}

func TestMeanReceptionMonotoneInDistance(t *testing.T) {
	p := DefaultParams()
	prev := 1.1
	for d := 0.0; d <= 600; d += 10 {
		pr := p.meanReception(d, 0)
		if pr > prev+1e-12 {
			t.Fatalf("mean reception increased with distance at %vm", d)
		}
		if pr < 0 || pr > 1 {
			t.Fatalf("mean reception out of range: %v at %vm", pr, d)
		}
		prev = pr
	}
	if p.meanReception(0, 0) < p.PMax*0.95 {
		t.Error("reception at 0m should be near PMax")
	}
	if p.meanReception(500, 0) > 0.05 {
		t.Error("reception at 500m should be near zero")
	}
	// At D50 the reception is half PMax by construction.
	if got := p.meanReception(p.D50, 0); math.Abs(got-p.PMax/2) > 1e-9 {
		t.Errorf("reception at D50 = %v, want %v", got, p.PMax/2)
	}
}

func TestRSSIMonotone(t *testing.T) {
	p := DefaultParams()
	if p.rssi(10, 0) <= p.rssi(100, 0) {
		t.Error("RSSI should fall with distance")
	}
}

func TestGEStateStationaryFraction(t *testing.T) {
	k := sim.NewKernel(1)
	ge := newGEState(k.RNG("ge"), time.Second, 250*time.Millisecond)
	good := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if ge.at(time.Duration(i) * 10 * time.Millisecond) {
			good++
		}
	}
	frac := float64(good) / n
	want := 1.0 / 1.25 // gMean/(gMean+bMean)
	if math.Abs(frac-want) > 0.02 {
		t.Errorf("good fraction = %v, want ≈%v", frac, want)
	}
}

func TestGEStateBurstiness(t *testing.T) {
	// Consecutive 10 ms samples should be heavily correlated given the
	// sojourn times are ≫ 10 ms.
	k := sim.NewKernel(2)
	ge := newGEState(k.RNG("ge"), time.Second, 200*time.Millisecond)
	same, total := 0, 0
	prev := ge.at(0)
	for i := 1; i < 100000; i++ {
		cur := ge.at(time.Duration(i) * 10 * time.Millisecond)
		if cur == prev {
			same++
		}
		total++
		prev = cur
	}
	if frac := float64(same) / float64(total); frac < 0.95 {
		t.Errorf("state persistence = %v, want > 0.95", frac)
	}
}

func TestGrayStateEpisodes(t *testing.T) {
	k := sim.NewKernel(3)
	g := newGrayState(k.RNG("gray"), 50*time.Second, time.Second, 3*time.Second)
	grayTime := 0
	const samples = 3600 * 10 // one hour at 100 ms
	for i := 0; i < samples; i++ {
		if g.at(time.Duration(i) * 100 * time.Millisecond) {
			grayTime++
		}
	}
	// Expected: ~70 episodes/hour × ~2 s each ≈ 140 s gray out of 3600 s.
	frac := float64(grayTime) / samples
	if frac < 0.01 || frac > 0.12 {
		t.Errorf("gray fraction = %v, want a few percent", frac)
	}
	if g.episodes < 30 || g.episodes > 140 {
		t.Errorf("gray episodes in an hour = %d, want ≈70", g.episodes)
	}
}

func TestFadingLinkBounds(t *testing.T) {
	k := sim.NewKernel(4)
	l := NewFadingLink(DefaultParams(), k.RNG("l"))
	for i := 0; i < 10000; i++ {
		pr := l.ReceiveProb(time.Duration(i)*50*time.Millisecond, float64(i%400))
		if pr < 0 || pr > 1 {
			t.Fatalf("ReceiveProb out of range: %v", pr)
		}
	}
}

// The paper's Fig 6a: conditional loss probability P(loss i+k | loss i)
// is much higher than unconditional loss for small k and decays toward it.
func TestFadingLinkConditionalLossDecays(t *testing.T) {
	k := sim.NewKernel(5)
	p := DefaultParams()
	l := NewFadingLink(p, k.RNG("l"))
	rng := k.RNG("coin")
	const n = 400000
	const gap = 10 * time.Millisecond // paper sends every 10 ms
	const dist = 40                   // near the BS
	lost := make([]bool, n)
	for i := range lost {
		pr := l.ReceiveProb(time.Duration(i)*gap, dist)
		lost[i] = !(rng.Float64() < pr)
	}
	uncond := 0
	for _, v := range lost {
		if v {
			uncond++
		}
	}
	uncondP := float64(uncond) / n

	condAt := func(kk int) float64 {
		num, den := 0, 0
		for i := 0; i+kk < n; i++ {
			if lost[i] {
				den++
				if lost[i+kk] {
					num++
				}
			}
		}
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	c1 := condAt(1)
	c500 := condAt(500) // 5 s later
	if c1 < uncondP*1.5 {
		t.Errorf("burstiness too weak: P(loss|loss,k=1)=%v vs uncond %v", c1, uncondP)
	}
	if math.Abs(c500-uncondP) > 0.12 {
		t.Errorf("conditional loss did not decay: k=500 gives %v vs uncond %v", c500, uncondP)
	}
	if c1 <= c500 {
		t.Errorf("conditional loss not decreasing: c1=%v c500=%v", c1, c500)
	}
}

// The paper's Fig 6b: losses are roughly independent across links.
func TestFadingLinksIndependentAcrossBSes(t *testing.T) {
	k := sim.NewKernel(6)
	p := DefaultParams()
	la := NewFadingLink(p, k.RNG("A"))
	lb := NewFadingLink(p, k.RNG("B"))
	rng := k.RNG("coin2")
	const n = 300000
	const gap = 20 * time.Millisecond
	const dist = 40
	lostA := make([]bool, n)
	lostB := make([]bool, n)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * gap
		lostA[i] = !(rng.Float64() < la.ReceiveProb(at, dist))
		lostB[i] = !(rng.Float64() < lb.ReceiveProb(at, dist))
	}
	recvP := func(lost []bool) float64 {
		c := 0
		for _, v := range lost {
			if !v {
				c++
			}
		}
		return float64(c) / n
	}
	pa, pb := recvP(lostA), recvP(lostB)
	// P(B_{i+1} | ¬A_i): reception of next packet on B given loss on A.
	num, den := 0, 0
	for i := 0; i+1 < n; i++ {
		if lostA[i] {
			den++
			if !lostB[i+1] {
				num++
			}
		}
	}
	pbGivenLossA := float64(num) / float64(den)
	// Same-link conditional for contrast.
	num2, den2 := 0, 0
	for i := 0; i+1 < n; i++ {
		if lostA[i] {
			den2++
			if !lostA[i+1] {
				num2++
			}
		}
	}
	paGivenLossA := float64(num2) / float64(den2)

	if paGivenLossA > pa*0.75 {
		t.Errorf("same-link conditional reception too high: %v vs uncond %v", paGivenLossA, pa)
	}
	if pbGivenLossA < pb*0.8 {
		t.Errorf("cross-link reception degraded by other link's loss: %v vs %v", pbGivenLossA, pb)
	}
}

func TestFixedAndScheduleLinks(t *testing.T) {
	if FixedLink(0.4).ReceiveProb(0, 99) != 0.4 {
		t.Error("FixedLink wrong")
	}
	s := &ScheduleLink{PerSecond: []float64{1, 0.5, 0}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 1}, {999 * time.Millisecond, 1}, {time.Second, 0.5},
		{2500 * time.Millisecond, 0}, {10 * time.Second, 0},
	}
	for _, c := range cases {
		if got := s.ReceiveProb(c.at, 0); got != c.want {
			t.Errorf("ScheduleLink at %v = %v, want %v", c.at, got, c.want)
		}
	}
}

// --- Channel tests -------------------------------------------------------

type collector struct {
	frames []RxInfo
	data   [][]byte
}

func (c *collector) RadioReceive(p []byte, info RxInfo) {
	c.frames = append(c.frames, info)
	c.data = append(c.data, p)
}

func perfectChannel(k *sim.Kernel) *Channel {
	return NewChannel(k, DefaultParams(), func(from, to NodeID) LinkModel { return FixedLink(1) })
}

func TestChannelDeliversToAllOthers(t *testing.T) {
	k := sim.NewKernel(7)
	c := perfectChannel(k)
	var rx [3]collector
	a := c.Attach("a", mobility.Fixed{X: 0, Y: 0}, &rx[0])
	c.Attach("b", mobility.Fixed{X: 50, Y: 0}, &rx[1])
	c.Attach("c", mobility.Fixed{X: 100, Y: 0}, &rx[2])

	c.Broadcast(a, []byte("hello"), nil)
	k.Run()

	if len(rx[0].frames) != 0 {
		t.Error("sender received its own frame")
	}
	for i := 1; i < 3; i++ {
		if len(rx[i].frames) != 1 {
			t.Fatalf("node %d received %d frames, want 1", i, len(rx[i].frames))
		}
		if string(rx[i].data[0]) != "hello" {
			t.Errorf("payload corrupted: %q", rx[i].data[0])
		}
		if rx[i].frames[0].From != a {
			t.Errorf("wrong source: %v", rx[i].frames[0].From)
		}
	}
	st := c.Stats()
	if st.Transmissions != 1 || st.Deliveries != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChannelPayloadIsolation(t *testing.T) {
	k := sim.NewKernel(8)
	c := perfectChannel(k)
	var rx collector
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 10}, &rx)
	buf := []byte("mutate-me")
	c.Broadcast(a, buf, nil)
	buf[0] = 'X' // mutation after Broadcast must not reach the receiver
	k.Run()
	if string(rx.data[0]) != "mutate-me" {
		t.Errorf("receiver saw mutated payload: %q", rx.data[0])
	}
}

func TestChannelLossyLink(t *testing.T) {
	k := sim.NewKernel(9)
	c := NewChannel(k, DefaultParams(), func(from, to NodeID) LinkModel { return FixedLink(0.5) })
	var rx collector
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 10}, &rx)
	const n = 2000
	for i := 0; i < n; i++ {
		c.Broadcast(a, []byte{1}, nil)
		k.Run()
	}
	got := float64(len(rx.frames)) / n
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("delivery rate = %v, want ≈0.5", got)
	}
	if s := c.Stats(); s.ChannelLosses+s.Deliveries != n {
		t.Errorf("losses+deliveries = %d, want %d", s.ChannelLosses+s.Deliveries, n)
	}
}

func TestChannelHalfDuplex(t *testing.T) {
	k := sim.NewKernel(10)
	c := perfectChannel(k)
	var rxa, rxb collector
	a := c.Attach("a", mobility.Fixed{}, &rxa)
	b := c.Attach("b", mobility.Fixed{X: 10}, &rxb)
	// Both transmit at t=0: neither can hear the other.
	c.Broadcast(a, make([]byte, 100), nil)
	c.Broadcast(b, make([]byte, 100), nil)
	k.Run()
	if len(rxa.frames) != 0 || len(rxb.frames) != 0 {
		t.Errorf("half-duplex violated: a got %d, b got %d", len(rxa.frames), len(rxb.frames))
	}
}

func TestChannelDoubleTransmitPanics(t *testing.T) {
	k := sim.NewKernel(11)
	c := perfectChannel(k)
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 10}, nil)
	c.Broadcast(a, make([]byte, 1000), nil)
	defer func() {
		if recover() == nil {
			t.Error("second Broadcast while on air did not panic")
		}
	}()
	c.Broadcast(a, []byte{1}, nil)
}

func TestChannelCollisionDestroysBoth(t *testing.T) {
	k := sim.NewKernel(12)
	c := perfectChannel(k)
	var rx collector
	// Two senders equidistant from the receiver: no capture, both die.
	a := c.Attach("a", mobility.Fixed{X: -50}, nil)
	b := c.Attach("b", mobility.Fixed{X: 50}, nil)
	c.Attach("r", mobility.Fixed{}, &rx)
	c.Broadcast(a, make([]byte, 500), nil)
	c.Broadcast(b, make([]byte, 500), nil)
	k.Run()
	if len(rx.frames) != 0 {
		t.Errorf("receiver decoded %d frames through a symmetric collision", len(rx.frames))
	}
	if c.Stats().Collisions == 0 {
		t.Error("no collisions recorded")
	}
}

func TestChannelCapture(t *testing.T) {
	k := sim.NewKernel(13)
	p := DefaultParams()
	p.RSSINoiseDB = 0 // deterministic power ordering
	c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
	var rx collector
	// A is 10× closer than B: its frame should capture the receiver.
	a := c.Attach("a", mobility.Fixed{X: 5}, nil)
	b := c.Attach("b", mobility.Fixed{X: 500}, nil)
	c.Attach("r", mobility.Fixed{}, &rx)
	c.Broadcast(b, make([]byte, 500), nil) // weaker first
	c.Broadcast(a, make([]byte, 500), nil) // stronger second, captures
	k.Run()
	if len(rx.frames) != 1 || rx.frames[0].From != a {
		t.Fatalf("capture failed: got %d frames %+v, want 1 from %v (b=%v)", len(rx.frames), rx.frames, a, b)
	}
}

func TestChannelBusyCarrierSense(t *testing.T) {
	k := sim.NewKernel(14)
	c := perfectChannel(k)
	a := c.Attach("a", mobility.Fixed{}, nil)
	b := c.Attach("b", mobility.Fixed{X: 100}, nil)
	far := c.Attach("far", mobility.Fixed{X: 10000}, nil)
	if c.Busy(a) || c.Busy(b) || c.Busy(far) {
		t.Fatal("idle medium sensed busy")
	}
	c.Broadcast(a, make([]byte, 1000), nil)
	if !c.Busy(a) {
		t.Error("transmitter does not sense itself busy")
	}
	if !c.Busy(b) {
		t.Error("nearby node does not sense the medium busy")
	}
	if c.Busy(far) {
		t.Error("node 10 km away senses the medium busy")
	}
	if !c.Transmitting(a) || c.Transmitting(b) {
		t.Error("Transmitting() wrong")
	}
	k.Run()
	if c.Busy(a) || c.Busy(b) {
		t.Error("medium still busy after airtime elapsed")
	}
}

func TestChannelReceiveProbUsesDistance(t *testing.T) {
	k := sim.NewKernel(15)
	c := NewChannel(k, DefaultParams(), nil) // default fading links
	a := c.Attach("a", mobility.Fixed{}, nil)
	near := c.Attach("near", mobility.Fixed{X: 20}, nil)
	farn := c.Attach("far", mobility.Fixed{X: 450}, nil)
	// Average over time to smooth the burst process.
	var pNear, pFar float64
	const samples = 500
	for i := 0; i < samples; i++ {
		k.RunUntil(k.Now() + 100*time.Millisecond)
		pNear += c.ReceiveProb(a, near)
		pFar += c.ReceiveProb(a, farn)
	}
	pNear /= samples
	pFar /= samples
	if pNear <= pFar*2 {
		t.Errorf("near link (%v) not clearly better than far (%v)", pNear, pFar)
	}
}

func TestChannelMovingReceiver(t *testing.T) {
	// A vehicle driving away should see reception degrade.
	k := sim.NewKernel(16)
	c := NewChannel(k, DefaultParams(), nil)
	route := mobility.NewRoute([]mobility.Point{{X: 0}, {X: 2000}}, 20, false)
	bs := c.Attach("bs", mobility.Fixed{}, nil)
	var early, late int
	veh := c.Attach("veh", &mobility.RouteMover{Route: route}, nil)
	c.SetReceiver(veh, ReceiverFunc(func(p []byte, info RxInfo) {
		if info.At < 10*time.Second {
			early++
		} else if info.At > 60*time.Second {
			late++
		}
	}))
	deadline := 90 * time.Second
	var tick func()
	tick = func() {
		if k.Now() >= deadline {
			return
		}
		if !c.Transmitting(bs) {
			c.Broadcast(bs, make([]byte, 100), nil)
		}
		k.After(50*time.Millisecond, tick)
	}
	k.After(0, tick)
	k.RunUntil(deadline)
	if early == 0 {
		t.Fatal("no receptions near the BS")
	}
	if late >= early {
		t.Errorf("reception did not degrade with distance: early=%d late=%d", early, late)
	}
}

// benchCityChannel builds a 1000-radio constant-density deployment
// (grid-city density, ≈47 radios per cutoff disc) with one moving
// transmitter, forcing the indexed or the legacy full-sweep path via the
// threshold override. The pair of benchmarks below is the acceptance
// measurement for the spatial index: per-transmission cost must follow
// the ~47 in-range neighbors, not the 1000 attached radios.
func benchCityChannel(b *testing.B, threshold int) (*sim.Kernel, *Channel, NodeID) {
	b.Helper()
	k := sim.NewKernel(1)
	p := DefaultParams()
	p.IndexThresholdNodes = threshold
	c := NewChannelSized(k, p, nil, 1000)
	// 999 fixed radios on a ~10.2 km × 6.4 km region at grid-city density.
	const cols = 39
	for i := 0; i < 999; i++ {
		c.Attach("bs", mobility.Fixed{
			X: float64(i%cols) * 260,
			Y: float64(i/cols) * 250,
		}, nil)
	}
	route := mobility.NewRoute([]mobility.Point{{X: 200, Y: 200}, {X: 9600, Y: 200},
		{X: 9600, Y: 6000}, {X: 200, Y: 6000}}, mobility.KmhToMps(40), true)
	veh := c.Attach("veh", &mobility.RouteMover{Route: route}, nil)
	return k, c, veh
}

// BenchmarkBroadcastIndexed1000 measures steady-state Broadcast+delivery
// on the spatially indexed path at 1000 radios.
func BenchmarkBroadcastIndexed1000(b *testing.B) {
	k, c, veh := benchCityChannel(b, 0) // default threshold: indexed at 1000
	payload := make([]byte, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Broadcast(veh, payload, nil)
		k.Run()
	}
}

// BenchmarkBroadcastSweep1000 is the pre-index baseline: the same
// deployment with the threshold forced above the population, so every
// transmission sweeps all 1000 radios.
func BenchmarkBroadcastSweep1000(b *testing.B) {
	k, c, veh := benchCityChannel(b, 1 << 20)
	payload := make([]byte, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Broadcast(veh, payload, nil)
		k.Run()
	}
}

func BenchmarkChannelBroadcast(b *testing.B) {
	k := sim.NewKernel(1)
	c := NewChannel(k, DefaultParams(), nil)
	v := mobility.NewVanLAN()
	for i, bs := range v.BSes {
		c.Attach(fmt.Sprintf("bs%d", i), mobility.Fixed(bs), nil)
	}
	veh := c.Attach("veh", &mobility.RouteMover{Route: v.Route}, nil)
	payload := make([]byte, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Broadcast(veh, payload, nil)
		k.Run()
	}
}
