package radio

import (
	"testing"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

// runDense drives a compact deployment — every pair well inside the
// cutoff and every link's advertised reach — under the given index
// threshold and returns per-node delivery counts plus channel stats.
// With no pair ever out of range the indexed path skips no draws, so
// forcing the threshold low (indexed) or high (full sweep) must produce
// identical outcomes from identical seeds.
func runDense(t *testing.T, threshold int) ([]int, Stats) {
	t.Helper()
	const n = 140
	k := sim.NewKernel(33)
	p := DefaultParams()
	p.IndexThresholdNodes = threshold
	c := NewChannel(k, p, nil) // independent fading links
	recv := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		// A 12×12-ish lattice, 30 m pitch: max separation ≈ 470 m, far
		// below the ~1 km cutoff and any per-link reach.
		pos := mobility.Point{X: float64(i%12) * 30, Y: float64(i/12) * 30}
		c.Attach(string(rune('A'+i%26)), mobility.Fixed(pos), ReceiverFunc(func([]byte, RxInfo) { recv[i]++ }))
	}
	payload := make([]byte, 120)
	for step := 0; step < 60; step++ {
		src := NodeID((step * 7) % n)
		if !c.Transmitting(src) {
			c.Broadcast(src, payload, nil)
		}
		k.RunUntil(k.Now() + 5*time.Millisecond)
	}
	k.Run()
	return recv, c.Stats()
}

// TestIndexedMatchesSweepWhenAllInRange is the equivalence half of the
// determinism contract: as long as no receiver is out of range, the
// spatially indexed path and the historical full sweep draw the same
// per-link coins and deliver the same frames — only the bucket-driven
// iteration order differs, which no outcome depends on.
func TestIndexedMatchesSweepWhenAllInRange(t *testing.T) {
	sweepRecv, sweepStats := runDense(t, 1000) // threshold above N: full sweep
	idxRecv, idxStats := runDense(t, 8)        // threshold below N: indexed
	if sweepStats != idxStats {
		t.Errorf("stats diverged: sweep %+v vs indexed %+v", sweepStats, idxStats)
	}
	if sweepStats.Deliveries == 0 {
		t.Fatal("workload delivered nothing; test is vacuous")
	}
	for i := range sweepRecv {
		if sweepRecv[i] != idxRecv[i] {
			t.Fatalf("node %d deliveries diverged: sweep %d vs indexed %d", i, sweepRecv[i], idxRecv[i])
		}
	}
}

// TestIndexedSkipsOutOfRange pins the cutoff semantics of the indexed
// path: receivers beyond Params.MaxRangeM never receive, never consume
// link randomness, and never appear in the loss statistics, while
// in-range receivers behave normally.
func TestIndexedSkipsOutOfRange(t *testing.T) {
	k := sim.NewKernel(5)
	p := DefaultParams()
	p.IndexThresholdNodes = 2
	p.MaxRangeM = 400
	c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
	var near, far int
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("near", mobility.Fixed{X: 100}, ReceiverFunc(func([]byte, RxInfo) { near++ }))
	c.Attach("far", mobility.Fixed{X: 5000}, ReceiverFunc(func([]byte, RxInfo) { far++ }))
	for i := 0; i < 10; i++ {
		c.Broadcast(a, make([]byte, 100), nil)
		k.Run()
	}
	if near != 10 {
		t.Errorf("in-range receiver got %d frames, want 10", near)
	}
	if far != 0 {
		t.Errorf("receiver 5 km out decoded %d frames through a 400 m cutoff", far)
	}
	st := c.Stats()
	if st.ChannelLosses != 0 {
		t.Errorf("skipped out-of-range receivers were counted as channel losses: %+v", st)
	}
	if st.Deliveries != 10 {
		t.Errorf("deliveries = %d, want 10", st.Deliveries)
	}
}

// TestCustomFactoryNeedsExplicitCutoff pins the opt-in rule for custom
// link factories: the fading-derived cutoff describes only the default
// factory's links, so a channel whose factory installs its own models
// (trace replays, fixed links) keeps the full sweep at any population —
// long-range deliveries must not silently vanish when a fleet crosses
// the index threshold — unless Params.MaxRangeM states a cutoff.
func TestCustomFactoryNeedsExplicitCutoff(t *testing.T) {
	k := sim.NewKernel(15)
	p := DefaultParams()
	p.IndexThresholdNodes = 4
	c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
	var far int
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 50}, nil)
	c.Attach("c", mobility.Fixed{X: 100}, nil)
	c.Attach("far", mobility.Fixed{X: 50000}, ReceiverFunc(func([]byte, RxInfo) { far++ }))
	if c.indexed() {
		t.Fatal("custom factory without MaxRangeM must not engage the indexed path")
	}
	c.Broadcast(a, make([]byte, 100), nil)
	k.Run()
	if far != 1 {
		t.Errorf("50 km FixedLink(1) receiver got %d frames, want 1 (full sweep)", far)
	}
}

// TestIndexedMovingReceiverRevalidation exercises the grid's lazy
// re-bucketing: a vehicle drives out of range (cells away from its
// original bucket) and back; deliveries must stop while it is out and —
// the part a stale bucket would break — resume when it returns.
func TestIndexedMovingReceiverRevalidation(t *testing.T) {
	k := sim.NewKernel(6)
	p := DefaultParams()
	p.IndexThresholdNodes = 2
	p.MaxRangeM = 200
	p.SenseRangeM = 100
	c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
	bs := c.Attach("bs", mobility.Fixed{}, nil)
	route := mobility.NewRoute([]mobility.Point{{X: 0}, {X: 1000}}, 50, true)
	var early, mid, late int
	c.Attach("veh", &mobility.RouteMover{Route: route}, ReceiverFunc(func(_ []byte, info RxInfo) {
		switch {
		case info.At < 3*time.Second:
			early++
		case info.At > 17*time.Second && info.At < 23*time.Second:
			mid++ // vehicle parked ~1 km out (far end of the loop)
		case info.At > 37*time.Second:
			late++ // back within 150 m of the basestation
		}
	}))
	deadline := 40 * time.Second
	var tick func()
	tick = func() {
		if k.Now() >= deadline {
			return
		}
		if !c.Transmitting(bs) {
			c.Broadcast(bs, make([]byte, 100), nil)
		}
		k.After(100*time.Millisecond, tick)
	}
	k.After(0, tick)
	k.RunUntil(deadline)
	if early == 0 {
		t.Error("no receptions while the vehicle started in range")
	}
	if mid != 0 {
		t.Errorf("%d receptions at ~1 km through a 200 m cutoff", mid)
	}
	if late == 0 {
		t.Error("no receptions after the vehicle returned: stale grid bucket lost it")
	}
}

// TestFadingLinkAdvertisesRange pins the Ranged contract: the advertised
// reach brackets the model — negligible reception just beyond it, and a
// channel-level cutoff (CutoffM with default params) at least as far as
// any plausibly-shadowed link's reach.
func TestFadingLinkAdvertisesRange(t *testing.T) {
	k := sim.NewKernel(7)
	p := DefaultParams()
	for i := 0; i < 50; i++ {
		l := NewFadingLink(p, k.RNG("rng", string(rune('a'+i))))
		reach := l.MaxRangeM()
		if pr := l.ReceiveProb(0, reach+1); pr > 1e-8 {
			t.Fatalf("link %d: ReceiveProb just past advertised reach = %v, want ≈0", i, pr)
		}
		if l.Shadow() < 4*p.ShadowSigmaM && reach > p.CutoffM() {
			t.Fatalf("link %d: reach %.0f m exceeds channel cutoff %.0f m at %.1f m shadow",
				i, reach, p.CutoffM(), l.Shadow())
		}
	}
}

// TestCaptureMarginBoundary pins the collision arithmetic at the exact
// capture threshold. With noise disabled and distances 1 m vs 10 m at
// path-loss exponent 3, the RSSI gap is exactly 30 dB, so CaptureDB=30
// sits precisely on the >= boundary of both branches.
func TestCaptureMarginBoundary(t *testing.T) {
	build := func(captureDB float64) (*Channel, *sim.Kernel, NodeID, NodeID, *collector) {
		k := sim.NewKernel(8)
		p := DefaultParams()
		p.RSSINoiseDB = 0
		p.PathLossExp = 3
		p.CaptureDB = captureDB
		c := NewChannel(k, p, func(from, to NodeID) LinkModel { return FixedLink(1) })
		var rx collector
		strong := c.Attach("strong", mobility.Fixed{X: 1}, nil)
		weak := c.Attach("weak", mobility.Fixed{X: 10}, nil)
		c.Attach("r", mobility.Fixed{}, &rx)
		return c, k, strong, weak, &rx
	}

	// New frame exactly CaptureDB stronger than the locked one: captures.
	c, k, strong, weak, rx := build(30)
	c.Broadcast(weak, make([]byte, 500), nil)
	c.Broadcast(strong, make([]byte, 500), nil)
	k.Run()
	if len(rx.frames) != 1 || rx.frames[0].From != strong {
		t.Fatalf("exact-margin capture failed: got %+v, want 1 frame from %v", rx.frames, strong)
	}
	if got := c.Stats().Collisions; got != 1 {
		t.Errorf("exact-margin capture collisions = %d, want 1 (the displaced frame)", got)
	}

	// Locked frame exactly CaptureDB stronger than the newcomer: survives.
	c, k, strong, weak, rx = build(30)
	c.Broadcast(strong, make([]byte, 500), nil)
	c.Broadcast(weak, make([]byte, 500), nil)
	k.Run()
	if len(rx.frames) != 1 || rx.frames[0].From != strong {
		t.Fatalf("exact-margin survival failed: got %+v, want 1 frame from %v", rx.frames, strong)
	}
	if got := c.Stats().Collisions; got != 1 {
		t.Errorf("exact-margin survival collisions = %d, want 1 (the rejected newcomer)", got)
	}

	// One dB over the gap: neither side clears the margin — mutual
	// destruction, both frames counted.
	c, k, strong, weak, rx = build(31)
	c.Broadcast(weak, make([]byte, 500), nil)
	c.Broadcast(strong, make([]byte, 500), nil)
	k.Run()
	if len(rx.frames) != 0 {
		t.Fatalf("mutual destruction delivered %d frames", len(rx.frames))
	}
	if got := c.Stats().Collisions; got != 2 {
		t.Errorf("mutual destruction collisions = %d, want 2 (both frames)", got)
	}
}

// TestSetCurRecyclesDisplacedRecord pins the pooling invariant of the
// reception table: a lost frame's record (never scheduled as a delivery
// event) parks on the receiver as cur, is recycled to the free list the
// moment a later frame displaces it, and is handed out again by the next
// allocation — one record serves an unbounded lossy stream.
func TestSetCurRecyclesDisplacedRecord(t *testing.T) {
	k := sim.NewKernel(9)
	c := NewChannel(k, DefaultParams(), func(from, to NodeID) LinkModel { return FixedLink(0) })
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 10}, nil)
	b := c.nodes[1]

	c.Broadcast(a, make([]byte, 64), nil)
	k.Run()
	r1 := b.cur
	if r1 == nil {
		t.Fatal("lost frame left no locking reception record")
	}
	if r1.scheduled || r1.ok {
		t.Fatalf("lost record in wrong state: scheduled=%v ok=%v", r1.scheduled, r1.ok)
	}
	if c.freeRx != nil {
		t.Fatal("free list should be empty while the record locks the receiver")
	}

	c.Broadcast(a, make([]byte, 64), nil)
	if c.freeRx != r1 {
		t.Fatal("displaced unscheduled record was not recycled to the free list")
	}
	r2 := b.cur
	if r2 == r1 {
		t.Fatal("displaced record still installed as cur")
	}
	k.Run()

	c.Broadcast(a, make([]byte, 64), nil)
	if b.cur != r1 {
		t.Fatal("next allocation did not reuse the recycled record")
	}
	k.Run()
	if got := c.Stats().ChannelLosses; got != 3 {
		t.Errorf("channel losses = %d, want 3", got)
	}
}

// TestAttachRowsPreSized pins the capacity-hint satellite: with the
// final node count known up front, no dense link row is ever re-grown by
// a later attach.
func TestAttachRowsPreSized(t *testing.T) {
	k := sim.NewKernel(10)
	const n = 40
	c := NewChannelSized(k, DefaultParams(), nil, n)
	for i := 0; i < n; i++ {
		c.Attach("n", mobility.Fixed{X: float64(i) * 10}, nil)
	}
	for i, row := range c.links {
		if cap(row) != n {
			t.Fatalf("row %d capacity = %d, want the hint %d", i, cap(row), n)
		}
		if len(row) != n {
			t.Fatalf("row %d length = %d, want %d", i, len(row), n)
		}
	}
}

// TestSizedChannelStartsLazy pins the other half of the hint: a capacity
// at or above the index threshold starts the channel in lazy per-pair
// mode, so a city-scale attach sequence never builds the O(N²) table.
func TestSizedChannelStartsLazy(t *testing.T) {
	k := sim.NewKernel(11)
	p := DefaultParams()
	p.IndexThresholdNodes = 16
	c := NewChannelSized(k, p, nil, 64)
	for i := 0; i < 8; i++ {
		c.Attach("n", mobility.Fixed{X: float64(i) * 10}, nil)
	}
	if c.lazy == nil || c.links != nil {
		t.Fatal("sized channel did not start in lazy link mode")
	}
	if len(c.lazy) != 0 {
		t.Fatalf("lazy table has %d links before any traffic", len(c.lazy))
	}
	// First contact instantiates exactly the directed pairs used.
	c.Broadcast(0, make([]byte, 50), nil)
	k.Run()
	if len(c.lazy) != 7 {
		t.Fatalf("lazy table has %d links after one broadcast to 7 peers, want 7", len(c.lazy))
	}
}

// TestThresholdCrossingMigratesLazy pins the unhinted path: a channel
// that grows past the threshold without a capacity hint migrates its
// dense rows into the lazy table, and the label-derived link streams
// make the migrated and freshly-instantiated links indistinguishable.
func TestThresholdCrossingMigratesLazy(t *testing.T) {
	run := func(hint int) Stats {
		k := sim.NewKernel(12)
		p := DefaultParams()
		p.IndexThresholdNodes = 10
		var c *Channel
		if hint > 0 {
			c = NewChannelSized(k, p, nil, hint)
		} else {
			c = NewChannel(k, p, nil)
		}
		for i := 0; i < 20; i++ {
			c.Attach("n", mobility.Fixed{X: float64(i) * 25}, nil)
		}
		if c.lazy == nil {
			t.Fatal("channel past the threshold still has a dense table")
		}
		for step := 0; step < 30; step++ {
			src := NodeID(step % 20)
			if !c.Transmitting(src) {
				c.Broadcast(src, make([]byte, 80), nil)
			}
			k.RunUntil(k.Now() + 3*time.Millisecond)
		}
		k.Run()
		return c.Stats()
	}
	migrated := run(0) // dense for the first 9 attaches, then migrates
	hinted := run(20)  // lazy from the first attach
	if migrated != hinted {
		t.Errorf("migrated and hinted channels diverged: %+v vs %+v", migrated, hinted)
	}
}
