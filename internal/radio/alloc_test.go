package radio

import (
	"testing"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

// TestChannelDeliveryAllocFree is the hot-path guard for the radio layer:
// a steady-state broadcast — reception records, payload copies, tx-end
// bookkeeping and the scheduled kernel events — must not allocate. The
// pools warm up on the first frame; every later frame recycles.
func TestChannelDeliveryAllocFree(t *testing.T) {
	k := sim.NewKernel(9)
	c := NewChannel(k, DefaultParams(), func(from, to NodeID) LinkModel {
		return FixedLink(1) // always deliver: exercises the full path
	})
	got := 0
	sink := ReceiverFunc(func(payload []byte, info RxInfo) { got += len(payload) })
	a := c.Attach("a", mobility.Fixed{}, sink)
	c.Attach("b", mobility.Fixed{X: 10}, sink)
	c.Attach("c", mobility.Fixed{X: 20}, sink)
	payload := make([]byte, 200)

	// Warm the pools (reception records, buffers, kernel arena).
	for i := 0; i < 4; i++ {
		c.Broadcast(a, payload, nil)
		k.Run()
	}
	allocs := testing.AllocsPerRun(500, func() {
		c.Broadcast(a, payload, nil)
		k.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state frame delivery allocates %.1f objects, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("no payload delivered")
	}
}

// TestLossRecordsAreRecycled pins the pool bookkeeping for lost frames: a
// loss record is displaced by the next frame at that receiver, not leaked,
// so a long lossy run must not allocate reception records either.
func TestLossRecordsAreRecycled(t *testing.T) {
	k := sim.NewKernel(11)
	c := NewChannel(k, DefaultParams(), func(from, to NodeID) LinkModel {
		return FixedLink(0) // every frame lost
	})
	a := c.Attach("a", mobility.Fixed{}, nil)
	c.Attach("b", mobility.Fixed{X: 10}, nil)
	payload := make([]byte, 64)
	for i := 0; i < 4; i++ {
		c.Broadcast(a, payload, nil)
		k.Run()
	}
	allocs := testing.AllocsPerRun(500, func() {
		c.Broadcast(a, payload, nil)
		k.Run()
	})
	if allocs != 0 {
		t.Errorf("lossy steady state allocates %.1f objects, want 0", allocs)
	}
	if c.Stats().ChannelLosses == 0 {
		t.Fatal("expected channel losses")
	}
	if c.Stats().Deliveries != 0 {
		t.Fatal("unexpected deliveries on a zero link")
	}
}

// TestIndexedBroadcastAllocFree is the hot-path guard for the spatially
// indexed channel: steady-state Broadcast on the grid path — bucket
// queries, lazy link lookups, reception records, payload copies and the
// active-transmitter bookkeeping — must not allocate once the in-range
// link set is instantiated.
func TestIndexedBroadcastAllocFree(t *testing.T) {
	k := sim.NewKernel(13)
	p := DefaultParams()
	p.IndexThresholdNodes = 4
	p.MaxRangeM = 1000 // custom factories index only with an explicit cutoff
	c := NewChannel(k, p, func(from, to NodeID) LinkModel {
		return FixedLink(1) // always deliver: exercises the full path
	})
	got := 0
	sink := ReceiverFunc(func(payload []byte, info RxInfo) { got += len(payload) })
	const n = 32
	for i := 0; i < n; i++ {
		// All within the cutoff of node 0, stationary: buckets never churn.
		c.Attach("n", mobility.Fixed{X: float64(i) * 25}, sink)
	}
	if !c.indexed() {
		t.Fatal("test did not engage the indexed path")
	}
	payload := make([]byte, 200)
	// Warm the pools and instantiate every (0,*) link.
	for i := 0; i < 4; i++ {
		c.Broadcast(0, payload, nil)
		k.Run()
	}
	allocs := testing.AllocsPerRun(500, func() {
		c.Broadcast(0, payload, nil)
		k.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state indexed broadcast allocates %.1f objects, want 0", allocs)
	}
	if got == 0 {
		t.Fatal("no payload delivered")
	}
}

// TestBusyAllocFree guards the carrier-sense fast path: scanning the
// active-transmitter list must never allocate, busy medium or idle.
func TestBusyAllocFree(t *testing.T) {
	k := sim.NewKernel(14)
	c := NewChannel(k, DefaultParams(), func(from, to NodeID) LinkModel { return FixedLink(1) })
	a := c.Attach("a", mobility.Fixed{}, nil)
	b := c.Attach("b", mobility.Fixed{X: 100}, nil)
	c.Broadcast(a, make([]byte, 4000), nil) // long frame: stays on the air
	if !c.Busy(b) {
		t.Fatal("medium not sensed busy during a transmission")
	}
	allocs := testing.AllocsPerRun(500, func() {
		c.Busy(b)
		c.Busy(a)
	})
	if allocs != 0 {
		t.Errorf("Busy allocates %.1f objects, want 0", allocs)
	}
	k.Run()
	allocs = testing.AllocsPerRun(500, func() { c.Busy(b) })
	if allocs != 0 {
		t.Errorf("idle Busy allocates %.1f objects, want 0", allocs)
	}
}

// TestLinkStreamsIsolated pins the property that makes eager attach-time
// link construction equivalent to the old lazy scheme: every directed
// pair's RNG streams are label-derived and private, so traffic on other
// links never perturbs a pair's coin flips. Run B front-loads extra
// broadcasts from the other nodes before an identically-scheduled
// measurement window; the window's deliveries must match run A exactly.
func TestLinkStreamsIsolated(t *testing.T) {
	const warmup = time.Second
	run := func(priorTraffic bool) []int {
		k := sim.NewKernel(21)
		c := NewChannel(k, DefaultParams(), nil)
		ids := make([]NodeID, 3)
		recv := make([]int, 3)
		for i := range ids {
			i := i
			ids[i] = c.Attach(string(rune('a'+i)), mobility.Fixed{X: float64(i) * 30},
				ReceiverFunc(func(p []byte, info RxInfo) { recv[i]++ }))
		}
		if priorTraffic {
			// Consume the (1,*) and (2,*) link streams before the window.
			for step := 0; step < 20; step++ {
				src := ids[1+step%2]
				if !c.Transmitting(src) {
					c.Broadcast(src, make([]byte, 100), nil)
				}
				k.RunUntil(k.Now() + 10*time.Millisecond)
			}
		}
		k.RunUntil(warmup)
		recv[0], recv[1], recv[2] = 0, 0, 0
		// Identical absolute schedule from node 0 in both runs.
		for step := 0; step < 40; step++ {
			if !c.Transmitting(ids[0]) {
				c.Broadcast(ids[0], make([]byte, 100), nil)
			}
			k.RunUntil(warmup + time.Duration(step+1)*10*time.Millisecond)
		}
		return recv
	}
	a := run(false)
	b := run(true)
	if a[1] != b[1] || a[2] != b[2] {
		t.Fatalf("prior traffic on other links changed (0,*) deliveries: %v vs %v", a, b)
	}
	if a[1] == 0 && a[2] == 0 {
		t.Fatal("measurement window delivered nothing; test is not exercising the links")
	}
}
