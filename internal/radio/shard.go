package radio

import (
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

// This file implements halo-band radio sharding: byte-identical sharded
// execution of the delivery fan-out for cities whose shards share radio
// edges (un-districted grids), where the multi-kernel district partition
// of DESIGN.md §10 cannot apply.
//
// Why not more kernels? Two couplings in this radio model have zero
// latency, so no halo width is wide enough for a conservative
// multi-kernel partition to stay exact without replicating all work:
// carrier sense reads the active-transmitter list in the same instant a
// MAC decides to transmit (deferral influence crosses one sense-range
// hop per arbitrarily small time step), and a reception's fate is sealed
// only at its end time — later overlapping frames, the receiver's own
// half-duplex turnaround and fault muting all mutate it mid-flight,
// while the completed frame can trigger an ACK transmission at that very
// timestamp, leaving zero lookahead to export the outcome across a
// barrier.
//
// Instead the partition moves inside the kernel: one sim.Kernel keeps
// the exact serial event order, and each indexed Broadcast's per-receiver
// delivery sweep — the dominant cost at metro populations: probability,
// RSSI noise, collision/capture and loss arithmetic over every in-range
// receiver — fans out across K worker lanes (sim.Gang). The grid's cell
// columns are assigned cyclically to lanes ("stripes"), every receiver
// is owned by the lane of its bucket column, and lanes compute delivery
// outcomes concurrently over disjoint state:
//
//   - workers read: positions (movers are pure functions of time),
//     dst.down, dst.txUntil, link reach — all frozen while the
//     coordinator is inside Broadcast;
//   - workers write: per-link model/RNG state (exclusive: each directed
//     link's receiver is owned by exactly one lane per dispatch),
//     dst.cur and its displaced record (receiver-exclusive), and
//     lane-local counters and reception pools.
//
// The coordinator then commits results in candidate order: payload
// copies and delivery events are scheduled in exactly the sequence the
// serial loop would produce, so kernel (at, seq) order — and therefore
// every downstream protocol decision — is untouched. Transmissions in
// the halo band (a lane computing deliveries for a transmitter homed in
// another stripe) consume the same per-link label-derived RNG streams as
// serial; only the draw-site moves across lanes, never the draw-count
// or the stream. Carrier sense still scans the coordinator-owned
// active-transmitter list, so Busy includes halo transmitters by
// construction.

// channelLane is one delivery lane's private state. Lanes are touched by
// exactly one goroutine per dispatch; the gang's barrier publishes their
// writes to the coordinator.
type channelLane struct {
	stats Stats      // HalfDuplex/Collisions/ChannelLosses from this lane's computations
	free  *reception // lane-local reception pool
	// Execution diagnostics: computed counts in-cutoff delivery
	// computations, rounds counts dispatches, idle counts dispatches in
	// which no candidate fell to this lane. haloFrom[s] counts
	// computations performed here for transmitters homed in stripe s —
	// the cross-stripe ("halo") delivery traffic.
	computed uint64
	rounds   uint64
	idle     uint64
	haloFrom []uint64
}

// channelShard is the sharded-delivery state hanging off a Channel while
// StartShards is active.
type channelShard struct {
	gang  *sim.Gang
	lanes []*channelLane
	rr    int // round-robin cursor for recycling coordinator-freed receptions

	// Dispatch arguments: set by broadcastSharded before the gang runs,
	// read by every lane. The gang's epoch/pending atomics carry the
	// happens-before edges in both directions.
	src    *node
	pos    mobility.Point
	now    time.Duration
	end    time.Duration
	stripe int          // transmitter's home stripe
	out    []*reception // per-candidate results, candidate (commit) order

	run func(lane int) // bound once; avoids a closure allocation per dispatch
}

// LaneStats reports one delivery lane's execution diagnostics.
type LaneStats struct {
	Lane     int
	Computed uint64 // in-cutoff delivery computations performed
	Rounds   uint64 // broadcast dispatches participated in
	Idle     uint64 // dispatches with no candidate in this lane's stripes
	HaloSent uint64 // computations other lanes performed for this stripe's transmitters
	HaloRecv uint64 // computations this lane performed for foreign-stripe transmitters
}

// laneOf maps a grid cell column to its owning lane: cyclic stripes of
// one cell column each, so the 3-column span of a 3×3 neighborhood walk
// lands on up to three distinct lanes and aggregate load balances.
func laneOf(cellX int32, k int) int {
	return int((cellX%int32(k) + int32(k)) % int32(k))
}

// StartShards enables stripe-sharded delivery with k lanes and returns
// the effective lane count: k when sharding engaged, 1 when the channel
// keeps the serial path (k < 2, or the channel is not on the spatially
// indexed path — the full sweep has no stripe plan). The caller owns the
// lifecycle and must StopShards before the channel is dropped, or the
// k-1 worker goroutines leak parked.
func (c *Channel) StartShards(k int) int {
	if c.shard != nil {
		panic("radio: StartShards while sharded")
	}
	if k < 2 || !c.indexed() {
		return 1
	}
	sh := &channelShard{
		gang:  sim.NewGang(k),
		lanes: make([]*channelLane, k),
	}
	for i := range sh.lanes {
		sh.lanes[i] = &channelLane{haloFrom: make([]uint64, k)}
	}
	sh.run = c.laneRun
	c.shard = sh
	// Candidate caches built on the serial path carry neither stripe
	// owners nor eagerly resolved links; rebuild them on first use.
	for _, n := range c.nodes {
		n.nbrOK = false
	}
	return k
}

// StopShards tears sharded delivery down: worker goroutines exit, lane
// counters fold into the channel totals (Stats keeps reporting the same
// numbers) and lane reception pools merge back into the coordinator's.
// No-op on a serial channel.
func (c *Channel) StopShards() {
	sh := c.shard
	if sh == nil {
		return
	}
	sh.gang.Stop()
	for _, ln := range sh.lanes {
		c.stats.HalfDuplex += ln.stats.HalfDuplex
		c.stats.Collisions += ln.stats.Collisions
		c.stats.ChannelLosses += ln.stats.ChannelLosses
		for r := ln.free; r != nil; {
			next := r.next
			r.next = c.freeRx
			c.freeRx = r
			r = next
		}
		ln.free = nil
	}
	c.shard = nil
}

// ShardLanes returns the number of active delivery lanes (0 = serial).
func (c *Channel) ShardLanes() int {
	if c.shard == nil {
		return 0
	}
	return len(c.shard.lanes)
}

// LaneStat returns lane i's execution diagnostics. Safe to call from
// kernel events (obs sampling) and after the run: the gang's barrier
// ordered every lane write before the coordinator could be running.
func (c *Channel) LaneStat(i int) LaneStats {
	sh := c.shard
	if sh == nil {
		return LaneStats{Lane: i} // sharding already torn down
	}
	ln := sh.lanes[i]
	st := LaneStats{
		Lane: i, Computed: ln.computed, Rounds: ln.rounds, Idle: ln.idle,
	}
	for s, n := range ln.haloFrom {
		if s != i {
			st.HaloRecv += n
		}
	}
	for _, other := range sh.lanes {
		st.HaloSent += other.haloFrom[i]
	}
	st.HaloSent -= ln.haloFrom[i] // own-stripe computations are not halo
	return st
}

// LaneOf reports the stripe lane currently owning a node, from its live
// position (diagnostics: per-lane node counts, stripe-crossing tests).
// Returns 0 on a serial channel or before the grid exists.
func (c *Channel) LaneOf(id NodeID) int {
	if c.shard == nil || c.grid == nil {
		return 0
	}
	pos := c.nodes[id].mover.Position(c.K.Now())
	return laneOf(c.grid.cellX(pos), len(c.shard.lanes))
}

// broadcastSharded is broadcastIndexed with the per-receiver delivery
// computations fanned out across the stripe lanes. Candidate discovery,
// cache maintenance and result commitment stay on the coordinator; the
// commit loop schedules deliveries in candidate order, reproducing the
// serial kernel sequence exactly.
func (c *Channel) broadcastSharded(src *node, srcPos mobility.Point, payload []byte, now, end time.Duration) {
	g := c.ensureGrid(now)
	sh := c.shard
	k := len(sh.lanes)
	cell := g.cellKey(srcPos)
	if !src.nbrOK || src.nbrVer != g.version || src.nbrCell != cell {
		src.nbr = src.nbr[:0]
		g.neighborhoodCells(srcPos, func(id NodeID, cellX int32) {
			if id != src.id {
				// Links resolve eagerly here — on the coordinator, at
				// cache build — because lanes must never touch the lazy
				// link map. Invisible to results: link RNG streams are
				// label-derived, so instantiation time never moves a
				// coin flip, and untouched links draw nothing. The cost
				// is materializing fringe links the serial path would
				// have skipped (candidates beyond the cutoff).
				src.nbr = append(src.nbr, nbrEntry{
					dst:   c.nodes[id],
					ls:    c.link(src.id, id),
					owner: uint8(laneOf(cellX, k)),
				})
			}
		})
		src.nbrOK, src.nbrVer, src.nbrCell = true, g.version, cell
	}

	// Recycle receptions freed by delivery events since the last
	// dispatch into one lane's pool, round-robin. Pool identity is
	// behaviorally invisible; this just keeps every pool circulating.
	if c.freeRx != nil {
		ln := sh.lanes[sh.rr]
		sh.rr = (sh.rr + 1) % k
		tail := c.freeRx
		for tail.next != nil {
			tail = tail.next
		}
		tail.next = ln.free
		ln.free = c.freeRx
		c.freeRx = nil
	}

	if cap(sh.out) < len(src.nbr) {
		sh.out = make([]*reception, len(src.nbr))
	}
	sh.out = sh.out[:len(src.nbr)]
	sh.src, sh.pos, sh.now, sh.end = src, srcPos, now, end
	sh.stripe = laneOf(g.cellX(srcPos), k)
	sh.gang.Dispatch(sh.run)

	// Commit phase: schedule surviving deliveries in candidate order —
	// the exact (at, seq) sequence the serial loop produces.
	for i, rx := range sh.out {
		if rx == nil {
			continue
		}
		sh.out[i] = nil
		buf := c.bufs.Get(len(payload))
		copy(buf, payload)
		rx.buf = buf
		rx.scheduled = true
		c.K.AtHandler(end, rx)
	}
	sh.src = nil
}

// laneRun is one lane's slice of a dispatched broadcast: every candidate
// whose bucket column this lane owns gets the full serial delivery
// decision, writing only lane-local and receiver-exclusive state.
func (c *Channel) laneRun(lane int) {
	sh := c.shard
	ln := sh.lanes[lane]
	ln.rounds++
	src, srcPos, now, end := sh.src, sh.pos, sh.now, sh.end
	out := sh.out
	did := uint64(0)
	for i := range src.nbr {
		nb := &src.nbr[i]
		if int(nb.owner) != lane {
			continue
		}
		out[i] = nil
		dist := srcPos.Dist(nb.dst.mover.Position(now))
		if dist > c.cutoff || dist > nb.ls.reach {
			continue
		}
		did++
		ln.haloFrom[sh.stripe]++
		out[i] = c.deliverCompute(ln, src, nb.dst, nb.ls, dist, now, end)
	}
	ln.computed += did
	if did == 0 {
		ln.idle++
	}
}

// deliverCompute is the worker-phase half of deliver: everything up to —
// but not including — the payload copy and event scheduling, which the
// coordinator commits in candidate order. It must mirror deliver's
// decision sequence draw for draw; the returned reception is non-nil
// exactly when a delivery event must be scheduled.
func (c *Channel) deliverCompute(ln *channelLane, src, dst *node, ls *linkState, dist float64, now, end time.Duration) *reception {
	if dst.down {
		return nil
	}
	pr := ls.model.ReceiveProb(now, dist)

	if dst.txUntil > now {
		if pr > 0 {
			ln.stats.HalfDuplex++
		}
		return nil
	}

	rssi := c.P.rssi(dist, ls.noise.NormFloat64()*c.P.RSSINoiseDB)

	if prev := dst.cur; prev != nil && prev.end > now {
		switch {
		case rssi >= prev.rssi+c.P.CaptureDB:
			if prev.ok {
				prev.ok = false
				ln.stats.Collisions++
			}
		case prev.rssi >= rssi+c.P.CaptureDB:
			ln.stats.Collisions++
			return nil
		default:
			if prev.ok {
				prev.ok = false
				ln.stats.Collisions++
			}
			ln.stats.Collisions++
			return nil
		}
	}

	ok := ls.loss.Float64() < pr
	rx := ln.alloc(c)
	rx.ch, rx.dst = c, dst
	rx.from, rx.rssi, rx.end, rx.ok = src.id, rssi, end, ok
	if prev := dst.cur; prev != nil && !prev.scheduled {
		ln.put(prev)
	}
	dst.cur = rx
	if !ok {
		ln.stats.ChannelLosses++
		return nil
	}
	rx.info = RxInfo{From: src.id, At: end, RSSI: rssi, Dist: dist}
	return rx
}

// alloc takes a reception from the lane pool.
func (ln *channelLane) alloc(c *Channel) *reception {
	if r := ln.free; r != nil {
		ln.free = r.next
		r.next = nil
		return r
	}
	return &reception{ch: c}
}

// put returns a reception to the lane pool.
func (ln *channelLane) put(r *reception) {
	r.dst = nil
	r.buf = nil
	r.scheduled = false
	r.next = ln.free
	ln.free = r
}
