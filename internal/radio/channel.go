package radio

import (
	"fmt"
	"math"
	"time"

	"github.com/vanlan/vifi/internal/frame"
	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

// NodeID identifies a radio attached to a Channel. IDs are small dense
// integers assigned by Attach in attachment order.
type NodeID int

// RxInfo carries per-frame PHY metadata delivered with a received frame,
// mirroring what the paper's modified driver logs (§2.1).
type RxInfo struct {
	From NodeID
	At   time.Duration // reception completion time
	RSSI float64       // synthetic RSSI in dBm
	Dist float64       // true distance at transmit time (diagnostic)
}

// Receiver consumes frames delivered by the channel.
type Receiver interface {
	// RadioReceive is called once per correctly decoded frame. The payload
	// is a pooled buffer owned by the channel: it is valid only for the
	// duration of the call, and receivers must copy anything they retain
	// (frame.Unmarshal already copies, so decode-and-dispatch is safe).
	RadioReceive(payload []byte, info RxInfo)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(payload []byte, info RxInfo)

// RadioReceive implements Receiver.
func (f ReceiverFunc) RadioReceive(payload []byte, info RxInfo) { f(payload, info) }

// LinkFactory builds the LinkModel for a directed (from, to) pair. The
// default factory creates independent FadingLinks; trace-driven
// experiments install ScheduleLinks instead. Factories must be pure
// functions of (from, to): below the index threshold the channel
// instantiates every directed pair eagerly at attach time, above it
// lazily on first contact — the two must be indistinguishable.
type LinkFactory func(from, to NodeID) LinkModel

// reception is one in-flight frame at one receiver. It carries its own
// damage state so that collisions can void it without racing against
// receptions that complete at the same instant. Records are pooled on the
// channel and double as the scheduled delivery event (sim.Handler), so
// steady-state delivery performs no allocation.
type reception struct {
	ch        *Channel
	dst       *node
	from      NodeID
	rssi      float64
	end       time.Duration
	ok        bool
	scheduled bool   // a delivery event owns (and will free) this record
	buf       []byte // pooled payload copy; nil when the frame was lost
	info      RxInfo
	next      *reception // free-list link
}

// OnEvent completes the reception: it releases the record (and the
// receiver lock it holds) and, if the frame survived, hands the payload
// to the receiver before recycling the buffer.
func (r *reception) OnEvent() {
	c, d := r.ch, r.dst
	ok, buf, info := r.ok, r.buf, r.info
	if d.cur == r {
		d.cur = nil
	}
	c.freeReception(r)
	if !ok {
		if buf != nil {
			c.bufs.Put(buf)
		}
		return // destroyed by a collision or half-duplex turnaround
	}
	c.stats.Deliveries++
	if d.recv != nil {
		d.recv.RadioReceive(buf, info)
	}
	c.bufs.Put(buf)
}

// nbrEntry is one cached broadcast candidate: a node bucketed in the
// transmitter's 3×3 grid neighborhood. The link state is resolved on the
// candidate's first in-cutoff contact and memoized — not prefetched at
// cache build — so links come into being on exactly the contacts that
// instantiated them before the cache existed; a 3×3 neighborhood holds
// several times more candidates than the cutoff disc, and materializing
// links for the fringe would multiply the lazy table for pairs that may
// never exchange a frame. (The sharded path is the exception: it
// resolves links eagerly at cache build, because worker lanes must never
// touch the lazy map — see broadcastSharded.)
//
// owner is the delivery lane owning this candidate (the stripe of its
// bucket cell column), filled only by the sharded path; the serial path
// leaves it zero and never reads it.
type nbrEntry struct {
	dst   *node
	ls    *linkState
	owner uint8
}

// node is the channel's view of one attached radio.
type node struct {
	id      NodeID
	name    string
	mover   mobility.Mover
	recv    Receiver
	txUntil time.Duration // transmitting until (half duplex)
	cur     *reception    // latest reception locking this receiver
	down    bool          // radio muted by fault injection (SetDown)

	// nbr caches the candidate list of the node's last indexed broadcast,
	// in grid walk order. Valid while the grid version and the node's
	// query cell are unchanged — then a fresh walk would return the exact
	// same nodes in the same order, so reuse is byte-identical.
	nbr     []nbrEntry
	nbrVer  uint64
	nbrCell uint64
	nbrOK   bool
}

// Stats aggregates channel-level counters, used by the efficiency
// experiments (Fig 12) and by tests.
type Stats struct {
	Transmissions int // frames put on the air
	Deliveries    int // frame receptions (per receiver)
	Collisions    int // receptions destroyed by overlap
	HalfDuplex    int // receptions missed because receiver was sending
	ChannelLosses int // receptions lost to the link model
}

// linkState bundles the model and the private randomness of one directed
// link. The RNG streams are created once and advanced across the whole
// simulation; recreating them per frame would freeze the coin flips.
// reach caches the model's advertised Ranged cutoff (+Inf when the model
// has none); only the indexed path consults it.
type linkState struct {
	model LinkModel
	loss  *sim.RNG
	noise *sim.RNG
	reach float64
}

// txEnd is the always-scheduled end-of-airtime event for one transmission:
// it keeps the active-transmitter list exact and invokes the sender's
// txDone handler. Records are pooled.
type txEnd struct {
	ch     *Channel
	src    *node
	txDone sim.Handler
	next   *txEnd
}

func (t *txEnd) OnEvent() {
	c, src, done := t.ch, t.src, t.txDone
	t.txDone = nil
	t.src = nil
	t.next = c.freeTx
	c.freeTx = t
	// Swap-delete the finished transmitter. The list is tiny (frames on
	// the air right now) and its order never influences results: Busy
	// does no RNG draws and any in-range hit returns true.
	for i, n := range c.activeTx {
		if n == src {
			last := len(c.activeTx) - 1
			c.activeTx[i] = c.activeTx[last]
			c.activeTx[last] = nil
			c.activeTx = c.activeTx[:last]
			break
		}
	}
	if done != nil {
		done.OnEvent()
	}
}

// DefaultIndexThreshold is the attached-node count at which a channel
// switches to the spatially indexed hot path and lazy per-pair links,
// unless Params.IndexThresholdNodes overrides it. Every run at or above
// the threshold skips out-of-range receivers entirely (their per-link
// streams advance less — safe because streams are private per link and
// the skipped draws are guaranteed losses); every run below it keeps the
// historical full sweep, so seeded sub-threshold experiments are
// byte-identical to prior versions.
const DefaultIndexThreshold = 128

// Channel is the shared broadcast medium. All attached nodes hear all
// transmissions subject to the per-link LinkModel, half-duplex operation
// and collision rules. The channel is single-threaded on the simulation
// kernel.
type Channel struct {
	K       *sim.Kernel
	P       Params
	factory LinkFactory
	nodes   []*node
	capHint int // expected final node count (0 = unknown)
	// links is the dense directed link table, indexed [from][to],
	// instantiated eagerly at attach time; the diagonal is never
	// populated. Above the index threshold it is replaced by lazy, the
	// per-pair table keyed from<<32|to, populated on first contact — the
	// two yield identical coin flips because link RNG streams are
	// label-derived (see newLink).
	links  [][]linkState
	lazy   map[uint64]*linkState
	bufs   frame.BufferPool
	freeRx *reception
	freeTx *txEnd
	// activeTx lists the transmitters currently on the air, maintained by
	// Broadcast and txEnd.OnEvent, so carrier sense scans frames in
	// flight instead of every attached node.
	activeTx []*node
	grid     *grid
	cutoff   float64 // cached P.CutoffM()
	// revalAt is the timestamp of the earliest pending revalidation event;
	// revalPending is false when none is scheduled. Revalidation is
	// event-driven (scheduled at the grid's exact drift deadlines) rather
	// than piggybacked on Broadcast, so bucket state at any instant is a
	// pure function of node positions and speed bounds — never of when the
	// local traffic happened to query the index. Sharded runs depend on
	// that: every shard sees identical bucket state at identical times.
	revalAt      time.Duration
	revalPending bool
	stats        Stats
	// shard, when non-nil, fans each indexed broadcast's delivery
	// computations out across stripe-owned worker lanes (see shard.go).
	// Byte-identity with serial holds by construction: one kernel, one
	// event order, same per-link streams, commit in candidate order.
	shard *channelShard
}

// NewChannel creates a channel over the kernel with the given parameters.
// If factory is nil, independent FadingLinks are created per directed pair,
// each seeded from the kernel's labeled RNG streams.
func NewChannel(k *sim.Kernel, p Params, factory LinkFactory) *Channel {
	c := &Channel{K: k, P: p}
	if factory == nil {
		// The fading-derived cutoff (CutoffM) describes exactly the links
		// this factory builds, so the indexed path may rely on it.
		c.cutoff = p.CutoffM()
		factory = func(from, to NodeID) LinkModel {
			return NewFadingLink(p, k.RNG("link", fmt.Sprint(from), fmt.Sprint(to)))
		}
	} else {
		// A custom factory may install models the fading parameters say
		// nothing about (FixedLink, ScheduleLink, trace replays), so the
		// indexed cutoff applies only when the caller sets an explicit
		// MaxRangeM; otherwise the channel keeps the full sweep at any
		// population rather than silently dropping long-range deliveries.
		c.cutoff = p.MaxRangeM
	}
	c.factory = factory
	return c
}

// NewChannelSized is NewChannel with a capacity hint from a caller that
// knows the deployment size up front (scenario generators, fleet cells).
// The hint pre-sizes the node and link tables so Attach never re-grows a
// row, and a hint at or above the index threshold starts the channel in
// lazy link mode immediately instead of eagerly building links it would
// migrate later.
func NewChannelSized(k *sim.Kernel, p Params, factory LinkFactory, capacity int) *Channel {
	c := NewChannel(k, p, factory)
	if capacity > 0 {
		c.capHint = capacity
		c.nodes = make([]*node, 0, capacity)
		if capacity < c.indexThreshold() {
			c.links = make([][]linkState, 0, capacity)
		}
	}
	return c
}

// indexThreshold returns the node count at which the indexed path and
// lazy link table take over.
func (c *Channel) indexThreshold() int {
	if c.P.IndexThresholdNodes > 0 {
		return c.P.IndexThresholdNodes
	}
	return DefaultIndexThreshold
}

// indexed reports whether Broadcast uses the spatial grid. It requires a
// finite cutoff; degenerate Params (no fading falloff, no MaxRangeM)
// keep the full sweep at any size.
func (c *Channel) indexed() bool {
	return len(c.nodes) >= c.indexThreshold() && c.cutoff > 0
}

// newLink builds the state of one directed link. Each link's RNG streams
// are derived from stable labels, so eager construction at attach time
// yields exactly the coin flips lazy construction does.
func (c *Channel) newLink(from, to NodeID) linkState {
	ls := linkState{
		model: c.factory(from, to),
		loss:  c.K.RNG("loss", fmt.Sprint(from), fmt.Sprint(to)),
		noise: c.K.RNG("rssi", fmt.Sprint(from), fmt.Sprint(to)),
		reach: math.Inf(1),
	}
	if r, ok := ls.model.(Ranged); ok {
		if v := r.MaxRangeM(); v > 0 {
			ls.reach = v
		}
	}
	return ls
}

// pairKey packs a directed pair into the lazy-table key.
func pairKey(from, to NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// Attach registers a radio with the channel and returns its NodeID.
// Below the index threshold the directed link table grows by one row and
// one column, instantiated immediately so the frame path never consults
// a map; crossing the threshold migrates the table to lazy per-pair mode
// (identical coin flips, see newLink) so a large fleet never pays the
// O(N²) link memory or the quadratic attach cost.
func (c *Channel) Attach(name string, mover mobility.Mover, recv Receiver) NodeID {
	id := NodeID(len(c.nodes))
	c.nodes = append(c.nodes, &node{id: id, name: name, mover: mover, recv: recv})
	if c.lazy == nil && max(len(c.nodes), c.capHint) >= c.indexThreshold() {
		c.migrateLazy()
	}
	if c.grid != nil {
		c.grid.insert(id, mover, c.K.Now())
		c.scheduleReval()
	} else if c.indexed() {
		c.buildGrid()
	}
	if c.lazy != nil {
		return id
	}
	rowCap := max(len(c.nodes), c.capHint)
	row := make([]linkState, len(c.nodes), rowCap)
	for other := NodeID(0); other < id; other++ {
		row[other] = c.newLink(id, other)
		c.links[other] = append(c.links[other], c.newLink(other, id))
	}
	c.links = append(c.links, row)
	return id
}

// migrateLazy moves the dense link table into the lazy per-pair map.
// Only links already instantiated move; everything else is created on
// first contact.
func (c *Channel) migrateLazy() {
	c.lazy = make(map[uint64]*linkState, len(c.links)*len(c.links))
	for from, row := range c.links {
		for to := range row {
			if row[to].model == nil {
				continue // the diagonal
			}
			ls := row[to]
			c.lazy[pairKey(NodeID(from), NodeID(to))] = &ls
		}
	}
	c.links = nil
}

// SetReceiver replaces the receiver of an attached node (used when protocol
// stacks are wired up after attachment).
func (c *Channel) SetReceiver(id NodeID, recv Receiver) { c.nodes[id].recv = recv }

// NodeName returns the name given at attachment.
func (c *Channel) NodeName(id NodeID) string { return c.nodes[id].name }

// SetDown mutes a node's radio: its broadcasts put nothing on the air
// (though airtime still elapses and txDone still fires, so MAC gates keep
// advancing), it receives nothing, and it senses an idle medium. A frame
// it is currently receiving is voided. Stream stability: muting touches
// no RNG — a down receiver is skipped before any loss/noise draw on its
// (private, per-directed-pair) streams, and a down transmitter draws
// nothing for anyone — so every live pair's coin flips are byte-identical
// with or without a down bystander. Frames already in flight from this
// node complete delivery (the crash takes effect at the next frame
// boundary, a deliberate simplification).
func (c *Channel) SetDown(id NodeID) {
	n := c.nodes[id]
	n.down = true
	if n.cur != nil && n.cur.end > c.K.Now() && n.cur.ok {
		n.cur.ok = false
	}
}

// SetUp restores a radio muted by SetDown.
func (c *Channel) SetUp(id NodeID) { c.nodes[id].down = false }

// Down reports whether the node's radio is muted.
func (c *Channel) Down(id NodeID) bool { return c.nodes[id].down }

// NumNodes returns the number of attached radios.
func (c *Channel) NumNodes() int { return len(c.nodes) }

// Stats returns a copy of the channel counters. On a sharded channel the
// per-lane counters (collision, half-duplex and channel-loss decisions
// run on worker lanes) are folded in, so the totals match a serial run
// exactly at any point between broadcasts.
func (c *Channel) Stats() Stats {
	st := c.stats
	if c.shard != nil {
		for _, ln := range c.shard.lanes {
			st.HalfDuplex += ln.stats.HalfDuplex
			st.Collisions += ln.stats.Collisions
			st.ChannelLosses += ln.stats.ChannelLosses
		}
	}
	return st
}

// Buffers exposes the channel's buffer pool so the MAC layer can marshal
// frames into recycled buffers.
func (c *Channel) Buffers() *frame.BufferPool { return &c.bufs }

// Position returns a node's current position.
func (c *Channel) Position(id NodeID) mobility.Point {
	return c.nodes[id].mover.Position(c.K.Now())
}

// link returns the state for the directed pair, instantiating it on
// first contact in lazy mode.
func (c *Channel) link(from, to NodeID) *linkState {
	if c.lazy != nil {
		key := pairKey(from, to)
		ls := c.lazy[key]
		if ls == nil {
			l := c.newLink(from, to)
			ls = &l
			c.lazy[key] = ls
		}
		return ls
	}
	return &c.links[from][to]
}

// Link exposes the LinkModel for a directed pair (diagnostics and
// experiment instrumentation).
func (c *Channel) Link(from, to NodeID) LinkModel { return c.link(from, to).model }

// ReceiveProb reports the instantaneous reception probability from one
// node to another given their current positions. This is the oracle the
// idealized policies (BestBS, AllBSes, PerfectRelay) consult.
func (c *Channel) ReceiveProb(from, to NodeID) float64 {
	now := c.K.Now()
	d := c.nodes[from].mover.Position(now).Dist(c.nodes[to].mover.Position(now))
	return c.link(from, to).model.ReceiveProb(now, d)
}

// Busy reports whether the medium is sensed busy at the node: either the
// node itself is transmitting, or some in-flight transmission originates
// within carrier-sense range. Only the active-transmitter list is
// scanned — cost follows frames on the air, never the attached node
// count. An entry whose airtime ended exactly now (its txEnd event has
// not fired yet) is skipped by the txUntil check, matching the full
// sweep's semantics exactly.
func (c *Channel) Busy(id NodeID) bool {
	now := c.K.Now()
	me := c.nodes[id]
	if me.down {
		return false // a muted radio senses nothing
	}
	if me.txUntil > now {
		return true
	}
	if len(c.activeTx) == 0 {
		return false // nobody is on the air: skip the position checks
	}
	pos := me.mover.Position(now)
	for _, n := range c.activeTx {
		if n.id == id || n.txUntil <= now {
			continue
		}
		if n.mover.Position(now).Dist(pos) <= c.P.SenseRangeM {
			return true
		}
	}
	return false
}

// Transmitting reports whether the node is currently on the air.
func (c *Channel) Transmitting(id NodeID) bool {
	return c.nodes[id].txUntil > c.K.Now()
}

// allocReception takes a record from the pool.
func (c *Channel) allocReception() *reception {
	if r := c.freeRx; r != nil {
		c.freeRx = r.next
		r.next = nil
		return r
	}
	return &reception{ch: c}
}

// freeReception returns a record to the pool.
func (c *Channel) freeReception(r *reception) {
	r.dst = nil
	r.buf = nil
	r.scheduled = false
	r.next = c.freeRx
	c.freeRx = r
}

// setCur installs rx as the receiver's locking reception. A displaced
// record that no delivery event owns (a lost frame that completed) is
// recycled here; scheduled records free themselves when they fire.
func (c *Channel) setCur(dst *node, rx *reception) {
	if prev := dst.cur; prev != nil && !prev.scheduled {
		c.freeReception(prev)
	}
	dst.cur = rx
}

// Broadcast puts a frame on the air from the given node. Every other node
// receives it with its link-model probability, subject to half-duplex and
// collision rules. Returns the frame's airtime. If txDone is non-nil its
// OnEvent is invoked when the frame leaves the air (the MAC uses this to
// release its one-outstanding-frame gate); the channel always schedules
// the end-of-airtime event so virtual time advances even when every
// reception is lost.
//
// The payload is copied (into pooled buffers) once per successful
// delivery; the caller keeps ownership of the passed slice and may reuse
// it as soon as Broadcast returns.
func (c *Channel) Broadcast(from NodeID, payload []byte, txDone sim.Handler) time.Duration {
	now := c.K.Now()
	src := c.nodes[from]
	airtime := c.P.Airtime(len(payload))
	end := now + airtime
	if src.txUntil > now {
		// Model guard: the MAC enforces one outstanding frame, so this is
		// a programming error in the caller.
		panic(fmt.Sprintf("radio: node %d (%s) transmit while transmitting", from, src.name))
	}
	if src.down {
		// Muted transmitter: nothing reaches the air — no deliveries, no
		// carrier occupancy, no transmission counted — but the airtime
		// still elapses for the caller and txDone still fires, so the
		// MAC's one-outstanding-frame gate advances normally. No RNG is
		// touched, keeping every live pair's streams byte-identical.
		te := c.freeTx
		if te != nil {
			c.freeTx = te.next
			te.next = nil
		} else {
			te = &txEnd{ch: c}
		}
		te.src = src
		te.txDone = txDone
		c.K.AtHandler(end, te)
		return airtime
	}
	src.txUntil = end
	c.activeTx = append(c.activeTx, src)
	c.stats.Transmissions++

	// A node that begins transmitting loses any frame it was receiving.
	if src.cur != nil && src.cur.end > now && src.cur.ok {
		src.cur.ok = false
		c.stats.HalfDuplex++
	}

	srcPos := src.mover.Position(now)
	if c.shard != nil {
		c.broadcastSharded(src, srcPos, payload, now, end)
	} else if c.indexed() {
		c.broadcastIndexed(src, srcPos, payload, now, end)
	} else {
		for _, dst := range c.nodes {
			if dst.id == from {
				continue
			}
			dist := srcPos.Dist(dst.mover.Position(now))
			c.deliver(src, dst, c.link(src.id, dst.id), dist, payload, now, end)
		}
	}
	// Schedule the tx-done notification after the delivery events so that
	// receptions completing exactly at end are processed before the sender
	// reuses the medium (FIFO among equal timestamps).
	te := c.freeTx
	if te != nil {
		c.freeTx = te.next
		te.next = nil
	} else {
		te = &txEnd{ch: c}
	}
	te.src = src
	te.txDone = txDone
	c.K.AtHandler(end, te)
	return airtime
}

// broadcastIndexed delivers to the 3×3 grid neighborhood only: receivers
// beyond the channel cutoff — or beyond the link model's own advertised
// reach — are skipped entirely, so neither their loss/noise streams nor
// any collision state is touched. Per-link streams make that safe: the
// skipped draws correspond to guaranteed losses, and every other link's
// flips are unchanged.
// Candidate lists are cached per transmitter and reused while the grid
// version and the transmitter's query cell hold still (stationary nodes:
// until the next bucket change anywhere; movers: also bounded by their
// own cell crossings), so the steady-state broadcast does no map lookups
// at all. Prefetching the link states of candidates a walk would have
// skipped (inside the 3×3 cells but beyond the cutoff) is invisible:
// link RNG streams are label-derived, so instantiation time never moves
// a coin flip, and untouched links draw nothing.
func (c *Channel) broadcastIndexed(src *node, srcPos mobility.Point, payload []byte, now, end time.Duration) {
	g := c.ensureGrid(now)
	cell := g.cellKey(srcPos)
	if !src.nbrOK || src.nbrVer != g.version || src.nbrCell != cell {
		src.nbr = src.nbr[:0]
		g.neighborhood(srcPos, func(id NodeID) {
			if id != src.id {
				src.nbr = append(src.nbr, nbrEntry{dst: c.nodes[id]})
			}
		})
		src.nbrOK, src.nbrVer, src.nbrCell = true, g.version, cell
	}
	for i := range src.nbr {
		nb := &src.nbr[i]
		dist := srcPos.Dist(nb.dst.mover.Position(now))
		if dist > c.cutoff {
			continue
		}
		if nb.ls == nil {
			nb.ls = c.link(src.id, nb.dst.id)
		}
		if dist > nb.ls.reach {
			continue
		}
		c.deliver(src, nb.dst, nb.ls, dist, payload, now, end)
	}
}

// Indexed reports whether the channel is running the spatially indexed
// broadcast path (and therefore maintains the neighbor grid).
func (c *Channel) Indexed() bool { return c.indexed() }

// NeighborIDs appends to buf the IDs of the nodes currently bucketed in
// the 3×3 grid neighborhood of id's position, excluding id itself, and
// returns the extended slice. It is a read-only diagnostic view of the
// index as the last Broadcast left it — it never inserts, rebuckets or
// revalidates, so calling it cannot perturb delivery order. Before the
// first indexed broadcast (or below the index threshold) it falls back
// to every other attached node.
//
// The neighborhood over-approximates radio range: it is the candidate
// set Broadcast would filter by exact distance, not the set of reachable
// nodes. Protocol layers must not filter their own state by it —
// probability estimates legitimately outlive range — which is why only
// instrumentation and tests consume it.
func (c *Channel) NeighborIDs(id NodeID, buf []NodeID) []NodeID {
	g := c.grid
	if !c.indexed() || g == nil {
		for _, n := range c.nodes {
			if n.id != id {
				buf = append(buf, n.id)
			}
		}
		return buf
	}
	pos := c.nodes[id].mover.Position(c.K.Now())
	g.neighborhood(pos, func(nid NodeID) {
		if nid != id {
			buf = append(buf, nid)
		}
	})
	return buf
}

// buildGrid creates the spatial index and buckets every attached node at
// its current position. Called from Attach the moment the channel crosses
// the index threshold, so insertion order is attachment order and bucket
// state never depends on when the first broadcast happens.
func (c *Channel) buildGrid() {
	// Cells are sized by the reception cutoff alone: the grid serves
	// only Broadcast — carrier sense scans the active-transmitter
	// list, never the grid — so folding SenseRangeM in would only
	// inflate the candidate sets.
	g := newGrid(c.cutoff)
	c.grid = g
	now := c.K.Now()
	for _, n := range c.nodes {
		g.insert(n.id, n.mover, now)
	}
	c.scheduleReval()
}

// scheduleReval arranges a kernel event at the grid's earliest drift
// deadline. Revalidation thereby happens at instants that are a pure
// function of positions and speed bounds — identical in every shard of a
// partitioned run — instead of at whatever time the next local broadcast
// queried the index. An event made stale by an earlier deadline (insert
// can lower nextDeadline) reschedules itself without sweeping.
func (c *Channel) scheduleReval() {
	g := c.grid
	if g == nil || g.nextDeadline == never {
		return
	}
	if c.revalPending && c.revalAt <= g.nextDeadline {
		return
	}
	c.revalPending = true
	c.revalAt = g.nextDeadline
	at := g.nextDeadline
	c.K.At(at, func() {
		if c.revalAt == at {
			c.revalPending = false
		}
		g := c.grid
		if g != nil && c.K.Now() >= g.nextDeadline {
			g.revalidate(c.nodes, c.K.Now())
		}
		c.scheduleReval()
	})
}

// ensureGrid returns the spatial index, folding in any nodes attached
// since it was built. Revalidation is not triggered here — it runs on its
// own scheduled deadlines (see scheduleReval).
func (c *Channel) ensureGrid(now time.Duration) *grid {
	g := c.grid
	if g == nil {
		c.buildGrid()
		g = c.grid
	}
	for len(g.nodes) < len(c.nodes) {
		id := NodeID(len(g.nodes))
		g.insert(id, c.nodes[id].mover, now)
		c.scheduleReval()
	}
	return g
}

// deliver decides and schedules the reception of one frame at one node.
func (c *Channel) deliver(src, dst *node, ls *linkState, dist float64, payload []byte, now, end time.Duration) {
	if dst.down {
		// Muted receiver (single gate for both the dense and the indexed
		// path): skipped before any draw, so only this directed pair's
		// private streams advance less — a guaranteed loss, same argument
		// as the indexed path's out-of-range skip.
		return
	}
	pr := ls.model.ReceiveProb(now, dist)

	// Half duplex: a transmitting receiver hears nothing.
	if dst.txUntil > now {
		if pr > 0 {
			c.stats.HalfDuplex++
		}
		return
	}

	rssi := c.P.rssi(dist, ls.noise.NormFloat64()*c.P.RSSINoiseDB)

	// Collision handling: if the destination is locked onto another frame
	// that is still in flight (strictly: ends after now), the stronger
	// frame survives only with a clear capture margin; otherwise both are
	// destroyed. A frame ending exactly now has completed reception and
	// is not collided with.
	if prev := dst.cur; prev != nil && prev.end > now {
		switch {
		case rssi >= prev.rssi+c.P.CaptureDB:
			// New frame captures the receiver; the old one is lost.
			if prev.ok {
				prev.ok = false
				c.stats.Collisions++
			}
		case prev.rssi >= rssi+c.P.CaptureDB:
			// Existing frame survives; the new one is lost.
			c.stats.Collisions++
			return
		default:
			// Mutual destruction.
			if prev.ok {
				prev.ok = false
				c.stats.Collisions++
			}
			c.stats.Collisions++
			return
		}
	}

	// Channel loss?
	ok := ls.loss.Float64() < pr
	rx := c.allocReception()
	rx.ch, rx.dst = c, dst
	rx.from, rx.rssi, rx.end, rx.ok = src.id, rssi, end, ok
	c.setCur(dst, rx)
	if !ok {
		c.stats.ChannelLosses++
		return
	}
	buf := c.bufs.Get(len(payload))
	copy(buf, payload)
	rx.buf = buf
	rx.info = RxInfo{From: src.id, At: end, RSSI: rssi, Dist: dist}
	rx.scheduled = true
	c.K.AtHandler(end, rx)
}
