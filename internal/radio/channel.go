package radio

import (
	"fmt"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
	"github.com/vanlan/vifi/internal/sim"
)

// NodeID identifies a radio attached to a Channel. IDs are small dense
// integers assigned by Attach in attachment order.
type NodeID int

// RxInfo carries per-frame PHY metadata delivered with a received frame,
// mirroring what the paper's modified driver logs (§2.1).
type RxInfo struct {
	From NodeID
	At   time.Duration // reception completion time
	RSSI float64       // synthetic RSSI in dBm
	Dist float64       // true distance at transmit time (diagnostic)
}

// Receiver consumes frames delivered by the channel.
type Receiver interface {
	// RadioReceive is called once per correctly decoded frame. The payload
	// slice is owned by the receiver (the channel never reuses it).
	RadioReceive(payload []byte, info RxInfo)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(payload []byte, info RxInfo)

// RadioReceive implements Receiver.
func (f ReceiverFunc) RadioReceive(payload []byte, info RxInfo) { f(payload, info) }

// LinkFactory builds the LinkModel for a directed (from, to) pair. The
// default factory creates independent FadingLinks; trace-driven
// experiments install ScheduleLinks instead.
type LinkFactory func(from, to NodeID) LinkModel

// reception is one in-flight frame at one receiver. It carries its own
// damage state so that collisions can void it without racing against
// receptions that complete at the same instant.
type reception struct {
	from NodeID
	rssi float64
	end  time.Duration
	ok   bool
}

// node is the channel's view of one attached radio.
type node struct {
	id      NodeID
	name    string
	mover   mobility.Mover
	recv    Receiver
	txUntil time.Duration // transmitting until (half duplex)
	cur     *reception    // latest reception locking this receiver
}

// Stats aggregates channel-level counters, used by the efficiency
// experiments (Fig 12) and by tests.
type Stats struct {
	Transmissions int // frames put on the air
	Deliveries    int // frame receptions (per receiver)
	Collisions    int // receptions destroyed by overlap
	HalfDuplex    int // receptions missed because receiver was sending
	ChannelLosses int // receptions lost to the link model
}

// Channel is the shared broadcast medium. All attached nodes hear all
// transmissions subject to the per-link LinkModel, half-duplex operation
// and collision rules. The channel is single-threaded on the simulation
// kernel.
// linkState bundles the model and the private randomness of one directed
// link. The RNG streams are created once and advanced across the whole
// simulation; recreating them per frame would freeze the coin flips.
type linkState struct {
	model LinkModel
	loss  *sim.RNG
	noise *sim.RNG
}

type Channel struct {
	K       *sim.Kernel
	P       Params
	factory LinkFactory
	nodes   []*node
	links   map[[2]NodeID]*linkState
	stats   Stats
}

// NewChannel creates a channel over the kernel with the given parameters.
// If factory is nil, independent FadingLinks are created per directed pair,
// each seeded from the kernel's labeled RNG streams.
func NewChannel(k *sim.Kernel, p Params, factory LinkFactory) *Channel {
	c := &Channel{K: k, P: p, links: map[[2]NodeID]*linkState{}}
	if factory == nil {
		factory = func(from, to NodeID) LinkModel {
			return NewFadingLink(p, k.RNG("link", fmt.Sprint(from), fmt.Sprint(to)))
		}
	}
	c.factory = factory
	return c
}

// Attach registers a radio with the channel and returns its NodeID.
func (c *Channel) Attach(name string, mover mobility.Mover, recv Receiver) NodeID {
	id := NodeID(len(c.nodes))
	c.nodes = append(c.nodes, &node{id: id, name: name, mover: mover, recv: recv})
	return id
}

// SetReceiver replaces the receiver of an attached node (used when protocol
// stacks are wired up after attachment).
func (c *Channel) SetReceiver(id NodeID, recv Receiver) { c.nodes[id].recv = recv }

// NodeName returns the name given at attachment.
func (c *Channel) NodeName(id NodeID) string { return c.nodes[id].name }

// NumNodes returns the number of attached radios.
func (c *Channel) NumNodes() int { return len(c.nodes) }

// Stats returns a copy of the channel counters.
func (c *Channel) Stats() Stats { return c.stats }

// Position returns a node's current position.
func (c *Channel) Position(id NodeID) mobility.Point {
	return c.nodes[id].mover.Position(c.K.Now())
}

// link returns (creating if needed) the state for the directed pair.
func (c *Channel) link(from, to NodeID) *linkState {
	key := [2]NodeID{from, to}
	l, ok := c.links[key]
	if !ok {
		l = &linkState{
			model: c.factory(from, to),
			loss:  c.K.RNG("loss", fmt.Sprint(from), fmt.Sprint(to)),
			noise: c.K.RNG("rssi", fmt.Sprint(from), fmt.Sprint(to)),
		}
		c.links[key] = l
	}
	return l
}

// Link exposes the LinkModel for a directed pair (diagnostics and
// experiment instrumentation).
func (c *Channel) Link(from, to NodeID) LinkModel { return c.link(from, to).model }

// ReceiveProb reports the instantaneous reception probability from one
// node to another given their current positions. This is the oracle the
// idealized policies (BestBS, AllBSes, PerfectRelay) consult.
func (c *Channel) ReceiveProb(from, to NodeID) float64 {
	now := c.K.Now()
	d := c.nodes[from].mover.Position(now).Dist(c.nodes[to].mover.Position(now))
	return c.link(from, to).model.ReceiveProb(now, d)
}

// Busy reports whether the medium is sensed busy at the node: either the
// node itself is transmitting, or some in-flight transmission originates
// within carrier-sense range.
func (c *Channel) Busy(id NodeID) bool {
	now := c.K.Now()
	me := c.nodes[id]
	if me.txUntil > now {
		return true
	}
	pos := me.mover.Position(now)
	for _, n := range c.nodes {
		if n.id == id || n.txUntil <= now {
			continue
		}
		if n.mover.Position(now).Dist(pos) <= c.P.SenseRangeM {
			return true
		}
	}
	return false
}

// Transmitting reports whether the node is currently on the air.
func (c *Channel) Transmitting(id NodeID) bool {
	return c.nodes[id].txUntil > c.K.Now()
}

// Broadcast puts a frame on the air from the given node. Every other node
// receives it with its link-model probability, subject to half-duplex and
// collision rules. Returns the frame's airtime. If txDone is non-nil it is
// invoked when the frame leaves the air (the MAC uses this to release its
// one-outstanding-frame gate); the channel always schedules the
// end-of-airtime event so virtual time advances even when every reception
// is lost.
//
// The payload is copied once per successful delivery; the caller keeps
// ownership of the passed slice.
func (c *Channel) Broadcast(from NodeID, payload []byte, txDone func()) time.Duration {
	now := c.K.Now()
	src := c.nodes[from]
	airtime := c.P.Airtime(len(payload))
	end := now + airtime
	if src.txUntil > now {
		// Model guard: the MAC enforces one outstanding frame, so this is
		// a programming error in the caller.
		panic(fmt.Sprintf("radio: node %d (%s) transmit while transmitting", from, src.name))
	}
	src.txUntil = end
	c.stats.Transmissions++

	// A node that begins transmitting loses any frame it was receiving.
	if src.cur != nil && src.cur.end > now && src.cur.ok {
		src.cur.ok = false
		c.stats.HalfDuplex++
	}

	srcPos := src.mover.Position(now)
	for _, dst := range c.nodes {
		if dst.id == from {
			continue
		}
		c.deliver(src, dst, srcPos, payload, now, end)
	}
	// Schedule the tx-done notification after the delivery events so that
	// receptions completing exactly at end are processed before the sender
	// reuses the medium (FIFO among equal timestamps).
	c.K.At(end, func() {
		if txDone != nil {
			txDone()
		}
	})
	return airtime
}

// deliver decides and schedules the reception of one frame at one node.
func (c *Channel) deliver(src, dst *node, srcPos mobility.Point, payload []byte, now, end time.Duration) {
	dstPos := dst.mover.Position(now)
	dist := srcPos.Dist(dstPos)
	ls := c.link(src.id, dst.id)
	pr := ls.model.ReceiveProb(now, dist)

	// Half duplex: a transmitting receiver hears nothing.
	if dst.txUntil > now {
		if pr > 0 {
			c.stats.HalfDuplex++
		}
		return
	}

	rssi := c.P.rssi(dist, ls.noise.NormFloat64()*c.P.RSSINoiseDB)

	// Collision handling: if the destination is locked onto another frame
	// that is still in flight (strictly: ends after now), the stronger
	// frame survives only with a clear capture margin; otherwise both are
	// destroyed. A frame ending exactly now has completed reception and
	// is not collided with.
	if prev := dst.cur; prev != nil && prev.end > now {
		switch {
		case rssi >= prev.rssi+c.P.CaptureDB:
			// New frame captures the receiver; the old one is lost.
			if prev.ok {
				prev.ok = false
				c.stats.Collisions++
			}
		case prev.rssi >= rssi+c.P.CaptureDB:
			// Existing frame survives; the new one is lost.
			c.stats.Collisions++
			return
		default:
			// Mutual destruction.
			if prev.ok {
				prev.ok = false
				c.stats.Collisions++
			}
			c.stats.Collisions++
			return
		}
	}

	// Channel loss?
	ok := ls.loss.Float64() < pr
	rx := &reception{from: src.id, rssi: rssi, end: end, ok: ok}
	dst.cur = rx
	if !ok {
		c.stats.ChannelLosses++
		return
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	info := RxInfo{From: src.id, At: end, RSSI: rssi, Dist: dist}
	d := dst
	c.K.At(end, func() {
		if !rx.ok {
			return // destroyed by a collision or half-duplex turnaround
		}
		c.stats.Deliveries++
		if d.recv != nil {
			d.recv.RadioReceive(buf, info)
		}
	})
}
