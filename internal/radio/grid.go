package radio

import (
	"math"
	"time"

	"github.com/vanlan/vifi/internal/mobility"
)

// This file implements the channel's uniform spatial grid: above the
// index threshold, Broadcast queries the 3×3 cell neighborhood of the
// transmitter instead of sweeping every attached node, so per-frame cost
// is O(nodes within range), not O(N).
//
// Correctness invariant: a receiver whose true position is within the
// channel cutoff of the transmitter must appear in the queried
// neighborhood. Each node is bucketed by a recorded position; the cell
// edge is cutoff+slack meters, and a node is re-bucketed before it can
// drift more than slack meters from its recorded position (deadline =
// slack / speed bound, from mobility.SpeedBounded). Any point within
// cellM of the query position lies in the 3×3 neighborhood of the query
// cell, so |recorded − query| ≤ cutoff + drift ≤ cutoff + slack = cellM
// guarantees the node is found. Stationary nodes (speed bound 0 — fixed
// basestations) are bucketed once and never churn. The invariant leans
// on honest speed bounds: a mover that does not implement SpeedBounded
// is assumed to stay under defaultSpeedBoundMPS, and one that teleports
// or exceeds its advertised bound can be missed until its next
// revalidation deadline.
//
// The grid is a candidate filter only: Broadcast still computes exact
// distances and applies the cutoff per receiver, so false positives cost
// one distance check and false negatives cannot occur.

// gridSlackFrac sizes the revalidation slack as a fraction of the base
// cell edge (max of cutoff and carrier-sense range). Larger slack means
// bigger cells (more candidates per query) but rarer re-bucketing.
const gridSlackFrac = 0.25

// defaultSpeedBoundMPS bounds movers that do not advertise a speed via
// mobility.SpeedBounded: 100 m/s (360 km/h) is comfortably above any
// vehicular scenario, at the cost of more frequent revalidation. A
// custom mover that can exceed it (or jump discontinuously, e.g. a
// raw-GPS trace with gaps) must implement SpeedBounded itself, or the
// index may miss it until the next revalidation deadline.
const defaultSpeedBoundMPS = 100.0

// never is the deadline of nodes that cannot drift out of their bucket.
const never = time.Duration(math.MaxInt64)

// gridNode is the per-node index state.
type gridNode struct {
	key      uint64        // packed cell coordinates of the bucket holding the node
	deadline time.Duration // revalidate at/after this time; never for stationary nodes
	speed    float64       // speed bound in m/s
}

// grid is the uniform spatial index over node positions. Buckets are
// keyed by packed integer cell coordinates so the region needs no
// a-priori bounds; bucket slices are reused across re-bucketing, so the
// steady state allocates nothing.
type grid struct {
	cellM   float64
	slackM  float64
	buckets map[uint64][]NodeID
	nodes   []gridNode // indexed by NodeID, dense in attach order
	moving  []NodeID   // nodes with a positive speed bound
	// nextDeadline is the earliest revalidation deadline over moving
	// nodes; queries at or past it trigger a revalidation sweep.
	nextDeadline time.Duration
	// version counts bucket-membership changes (inserts and cross-cell
	// rebuckets). While it is unchanged, every neighborhood() walk from
	// the same query cell returns the same nodes in the same order, which
	// is what lets the channel cache per-transmitter candidate lists.
	version uint64
}

// newGrid sizes the index for the given base range (max of the channel
// cutoff and the carrier-sense range).
func newGrid(baseM float64) *grid {
	slack := baseM * gridSlackFrac
	return &grid{
		cellM:        baseM + slack,
		slackM:       slack,
		buckets:      map[uint64][]NodeID{},
		nextDeadline: never,
	}
}

// cellKey packs the cell coordinates of a position into a map key.
func (g *grid) cellKey(p mobility.Point) uint64 {
	cx := int32(math.Floor(p.X / g.cellM))
	cy := int32(math.Floor(p.Y / g.cellM))
	return packCell(cx, cy)
}

func packCell(cx, cy int32) uint64 {
	return uint64(uint32(cx))<<32 | uint64(uint32(cy))
}

// speedBound returns the mover's advertised maximum speed, or the
// conservative default when the mover does not implement SpeedBounded.
func speedBound(m mobility.Mover) float64 {
	if s, ok := m.(mobility.SpeedBounded); ok {
		return s.MaxSpeedMPS()
	}
	return defaultSpeedBoundMPS
}

// insert buckets one node at its current position. Called once per node,
// lazily, the first time the indexed path runs after its attachment.
func (g *grid) insert(id NodeID, m mobility.Mover, now time.Duration) {
	key := g.cellKey(m.Position(now))
	g.buckets[key] = append(g.buckets[key], id)
	g.version++
	gn := gridNode{key: key, deadline: never, speed: speedBound(m)}
	if gn.speed > 0 {
		gn.deadline = now + g.driftBudget(gn.speed)
		g.moving = append(g.moving, id)
		if gn.deadline < g.nextDeadline {
			g.nextDeadline = gn.deadline
		}
	}
	g.nodes = append(g.nodes, gn)
}

// driftBudget converts the slack distance into a revalidation period for
// the given speed bound.
func (g *grid) driftBudget(speed float64) time.Duration {
	return time.Duration(g.slackM / speed * float64(time.Second))
}

// revalidate refreshes the moving nodes once the earliest deadline has
// passed. O(1) when nothing is due. Every moving node is re-bucketed in
// the sweep — not just the expired ones — so the next sweep is a full
// drift period (set by the fastest mover) away and revalidation stays
// amortized O(1) per node per period; expiry-only refreshing would
// re-trigger the O(moving) scan once per individual staggered deadline.
func (g *grid) revalidate(nodes []*node, now time.Duration) {
	if now < g.nextDeadline {
		return
	}
	min := never
	for _, id := range g.moving {
		g.rebucket(id, nodes[id].mover, now)
		if d := g.nodes[id].deadline; d < min {
			min = d
		}
	}
	g.nextDeadline = min
}

// rebucket refreshes one node's bucket from its current position: when
// it crossed a cell boundary the node moves between buckets, otherwise
// only its deadline resets. The vacated slot is removed by swap-delete;
// bucket order is irrelevant to queries (the exact distance check
// decides), and it is deterministic either way.
func (g *grid) rebucket(id NodeID, m mobility.Mover, now time.Duration) {
	gn := &g.nodes[id]
	key := g.cellKey(m.Position(now))
	if key != gn.key {
		old := g.buckets[gn.key]
		for i, v := range old {
			if v == id {
				last := len(old) - 1
				old[i] = old[last]
				g.buckets[gn.key] = old[:last]
				break
			}
		}
		g.buckets[key] = append(g.buckets[key], id)
		g.version++
		gn.key = key
	}
	gn.deadline = now + g.driftBudget(gn.speed)
}

// neighborhood invokes visit for every node bucketed in the 3×3 cells
// around pos, in fixed row-major cell order. Bucket contents are a
// deterministic function of the simulation history, so the visit order —
// and therefore the order of scheduled receptions — is reproducible.
func (g *grid) neighborhood(pos mobility.Point, visit func(NodeID)) {
	g.neighborhoodCells(pos, func(id NodeID, _ int32) { visit(id) })
}

// neighborhoodCells is neighborhood with each node's bucket cell column
// (cellX) passed alongside its ID. The column is what the sharded
// channel folds into stripe ownership: it is a pure function of bucket
// state — itself a pure function of simulation history — so lane
// assignment is deterministic without ever reading a true position.
func (g *grid) neighborhoodCells(pos mobility.Point, visit func(NodeID, int32)) {
	cx := int32(math.Floor(pos.X / g.cellM))
	cy := int32(math.Floor(pos.Y / g.cellM))
	for dy := int32(-1); dy <= 1; dy++ {
		for dx := int32(-1); dx <= 1; dx++ {
			for _, id := range g.buckets[packCell(cx+dx, cy+dy)] {
				visit(id, cx+dx)
			}
		}
	}
}

// cellX returns the cell column of a position.
func (g *grid) cellX(pos mobility.Point) int32 {
	return int32(math.Floor(pos.X / g.cellM))
}
