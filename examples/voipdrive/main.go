// voipdrive reproduces the paper's VoIP evaluation (Fig 11) across all
// three environments: a commuter keeps a call up while the vehicle moves;
// we measure how long the call stays usable before a severe disruption
// (MoS < 2 for three seconds) under ViFi and under hard handoff.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/vanlan/vifi"
)

func main() {
	run(os.Stdout, 11, 10*time.Minute)
}

func run(w io.Writer, seed int64, airtime time.Duration) {
	type env struct {
		name string
		mk   func(p vifi.Protocol) *vifi.Deployment
	}
	envs := []env{
		{"VanLAN (live channel)", func(p vifi.Protocol) *vifi.Deployment { return vifi.NewVanLAN(seed, p) }},
		{"DieselNet channel 1", func(p vifi.Protocol) *vifi.Deployment { return vifi.NewDieselNet(seed, 1, p) }},
		{"DieselNet channel 6", func(p vifi.Protocol) *vifi.Deployment { return vifi.NewDieselNet(seed, 6, p) }},
	}

	fmt.Fprintln(w, "VoIP while driving: disruption-free session length (G.729, MoS<2 rule)")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-24s %12s %12s %7s %16s\n", "environment", "BRR (s)", "ViFi (s)", "gain", "interruptions")
	for _, e := range envs {
		brr := e.mk(vifi.HardHandoff()).RunVoIP(airtime)
		vf := e.mk(vifi.DefaultProtocol()).RunVoIP(airtime)
		gain := "-"
		if brr.MedianSessionSec > 0 {
			gain = fmt.Sprintf("%.1fx", vf.MedianSessionSec/brr.MedianSessionSec)
		}
		fmt.Fprintf(w, "%-24s %12.0f %12.0f %7s %9d → %4d\n", e.name,
			brr.MedianSessionSec, vf.MedianSessionSec, gain,
			brr.Interruptions, vf.Interruptions)
	}
	fmt.Fprintln(w, "\npaper shape: gains of ~2x on VanLAN and ≥1.5x on DieselNet (Fig 11);")
	fmt.Fprintln(w, "single runs are noisy — cmd/vifi-bench pools several for the stable figure")
}
