package main

import (
	"strings"
	"testing"
	"time"
)

func TestSmoke(t *testing.T) {
	airtime := 40 * time.Second
	var out strings.Builder
	run(&out, 11, airtime)
	s := out.String()
	for _, want := range []string{"VanLAN (live channel)", "DieselNet channel 1", "DieselNet channel 6"} {
		if !strings.Contains(s, want) {
			t.Errorf("environment %q missing:\n%s", want, s)
		}
	}
}
