// handoffstudy reproduces the paper's §3 measurement study: six handoff
// policies replayed over synthetic VanLAN probe logs — aggregate packet
// delivery (Fig 2's point) versus uninterrupted-session length (Fig 3/4's
// point). The punchline is the paper's motivation for ViFi: policies that
// look interchangeable in aggregate differ hugely for interactive use.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/vanlan/vifi/internal/handoff"
	"github.com/vanlan/vifi/internal/trace"
)

func main() {
	run(os.Stdout, 31, 8)
}

func run(w io.Writer, seed int64, trips int) {
	cfg := trace.DefaultVanLANConfig(seed)
	cfg.Trips = trips
	fmt.Fprintf(w, "Generating VanLAN probe logs (%d shuttle trips)...\n", trips)
	pt := trace.GenerateVanLANProbes(cfg)

	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %16s %26s\n", "policy", "packets (both)", "median session @50%/1s (s)")
	var allPkts, brrPkts int
	for _, p := range handoff.AllPolicies() {
		res := handoff.Evaluate(pt, p, time.Second)
		med := res.MedianSessionTimeWeighted(0.5)
		fmt.Fprintf(w, "%-10s %16d %26.0f\n", p.Name(), res.Delivered(), med)
		switch p.Name() {
		case "AllBSes":
			allPkts = res.Delivered()
		case "BRR":
			brrPkts = res.Delivered()
		}
	}
	fmt.Fprintln(w)
	if allPkts > 0 {
		fmt.Fprintf(w, "aggregate: BRR delivers %.0f%% of the AllBSes oracle —\n", 100*float64(brrPkts)/float64(allPkts))
	}
	fmt.Fprintln(w, "yet its uninterrupted sessions are several times shorter.")
	fmt.Fprintln(w, "That gap is the case for basestation diversity (§3).")
}
