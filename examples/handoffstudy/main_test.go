package main

import (
	"strings"
	"testing"
)

func TestSmoke(t *testing.T) {
	var out strings.Builder
	run(&out, 31, 2)
	s := out.String()
	for _, want := range []string{"AllBSes", "BRR", "aggregate:"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing:\n%s", want, s)
		}
	}
}
