package main

import (
	"strings"
	"testing"
)

// TestSmoke runs the UDP-loopback demo with a reduced packet count (the
// emulator runs in wall-clock time, so the default 200 packets would make
// CI wait).
func TestSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 40); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "hard handoff") || !strings.Contains(s, "ViFi relaying") {
		t.Errorf("comparison rows missing:\n%s", s)
	}
}
