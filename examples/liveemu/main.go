// liveemu runs the ViFi relay path over real UDP sockets on loopback: a
// hub process emulates the wireless ether with per-link loss, and three
// nodes (vehicle, anchor, auxiliary) exchange actual wire frames with
// wall-clock timers. It demonstrates the paper's core mechanism — an
// auxiliary that overhears a packet but not its acknowledgment relays it
// with the Eq 1–3 probability — outside the deterministic simulator.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"github.com/vanlan/vifi/internal/emu"
)

func main() {
	if err := run(os.Stdout, emu.DefaultDemoConfig().Packets); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, packets int) error {
	fmt.Fprintln(w, "Live ViFi over UDP loopback")
	fmt.Fprintln(w, "vehicle→anchor link: 30% delivery; vehicle→auxiliary: 90%")
	fmt.Fprintln(w)

	cfg := emu.DefaultDemoConfig()
	cfg.Packets = packets
	cfg.EnableRelay = false
	off, err := emu.RunDemo(cfg)
	if err != nil {
		return err
	}
	cfg.EnableRelay = true
	on, err := emu.RunDemo(cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-18s %10s %12s %10s\n", "mode", "sent", "delivered", "relays")
	fmt.Fprintf(w, "%-18s %10d %12d %10d\n", "hard handoff", off.Sent, off.Delivered, off.Relayed)
	fmt.Fprintf(w, "%-18s %10d %12d %10d\n", "ViFi relaying", on.Sent, on.Delivered, on.Relayed)
	fmt.Fprintln(w)
	if off.Sent > 0 && on.Sent > 0 {
		fmt.Fprintf(w, "delivery: %.0f%% → %.0f%% with opportunistic relaying over real sockets\n",
			100*float64(off.Delivered)/float64(off.Sent),
			100*float64(on.Delivered)/float64(on.Sent))
	}
	fmt.Fprintf(w, "(hub forwarded %d frames, dropped %d)\n", on.Hub.Forwarded, on.Hub.Dropped)
	return nil
}
