// liveemu runs the ViFi relay path over real UDP sockets on loopback: a
// hub process emulates the wireless ether with per-link loss, and three
// nodes (vehicle, anchor, auxiliary) exchange actual wire frames with
// wall-clock timers. It demonstrates the paper's core mechanism — an
// auxiliary that overhears a packet but not its acknowledgment relays it
// with the Eq 1–3 probability — outside the deterministic simulator.
package main

import (
	"fmt"
	"log"

	"github.com/vanlan/vifi/internal/emu"
)

func main() {
	fmt.Println("Live ViFi over UDP loopback")
	fmt.Println("vehicle→anchor link: 30% delivery; vehicle→auxiliary: 90%")
	fmt.Println()

	cfg := emu.DefaultDemoConfig()
	cfg.EnableRelay = false
	off, err := emu.RunDemo(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cfg.EnableRelay = true
	on, err := emu.RunDemo(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %10s %12s %10s\n", "mode", "sent", "delivered", "relays")
	fmt.Printf("%-18s %10d %12d %10d\n", "hard handoff", off.Sent, off.Delivered, off.Relayed)
	fmt.Printf("%-18s %10d %12d %10d\n", "ViFi relaying", on.Sent, on.Delivered, on.Relayed)
	fmt.Println()
	fmt.Printf("delivery: %.0f%% → %.0f%% with opportunistic relaying over real sockets\n",
		100*float64(off.Delivered)/float64(off.Sent),
		100*float64(on.Delivered)/float64(on.Sent))
	fmt.Printf("(hub forwarded %d frames, dropped %d)\n", on.Hub.Forwarded, on.Hub.Dropped)
}
