package main

import (
	"strings"
	"testing"
	"time"
)

// TestSmoke runs the example end to end at a reduced airtime so it stays
// fast in CI; the binary itself is covered by the build.
func TestSmoke(t *testing.T) {
	var out strings.Builder
	run(&out, 7, 45*time.Second)
	s := out.String()
	if !strings.Contains(s, "ViFi (diversity)") || !strings.Contains(s, "BRR (hard handoff)") {
		t.Errorf("comparison rows missing:\n%s", s)
	}
}
