// Quickstart: build a three-basestation cell, drive a vehicle past it,
// and compare disruption-free VoIP call time under ViFi and under the
// hard-handoff baseline — the paper's headline claim in ~40 lines.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/vanlan/vifi"
)

func main() {
	run(os.Stdout, 7, 8*time.Minute)
}

func run(w io.Writer, seed int64, airtime time.Duration) {
	fmt.Fprintln(w, "ViFi quickstart: VoIP from a moving vehicle, VanLAN campus")
	fmt.Fprintln(w)

	vifiQ := vifi.NewVanLAN(seed, vifi.DefaultProtocol()).RunVoIP(airtime)
	brrQ := vifi.NewVanLAN(seed, vifi.HardHandoff()).RunVoIP(airtime)

	fmt.Fprintf(w, "%-22s %18s %10s %14s\n", "protocol", "median session (s)", "mean MoS", "interruptions")
	fmt.Fprintf(w, "%-22s %18.0f %10.2f %14d\n", "BRR (hard handoff)", brrQ.MedianSessionSec, brrQ.MeanMoS, brrQ.Interruptions)
	fmt.Fprintf(w, "%-22s %18.0f %10.2f %14d\n", "ViFi (diversity)", vifiQ.MedianSessionSec, vifiQ.MeanMoS, vifiQ.Interruptions)
	fmt.Fprintln(w)
	if brrQ.MedianSessionSec > 0 {
		fmt.Fprintf(w, "ViFi lengthens disruption-free calls by %.1fx (paper: ≈2x).\n",
			vifiQ.MedianSessionSec/brrQ.MedianSessionSec)
	}
}
