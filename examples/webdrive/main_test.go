package main

import (
	"strings"
	"testing"
	"time"
)

func TestSmoke(t *testing.T) {
	var out strings.Builder
	run(&out, 23, 45*time.Second)
	s := out.String()
	for _, want := range []string{"BRR (hard handoff)", "Only Diversity", "ViFi (full)"} {
		if !strings.Contains(s, want) {
			t.Errorf("arm %q missing:\n%s", want, s)
		}
	}
}
