// webdrive reproduces the paper's Web-browsing evaluation (Fig 9): a
// vehicle repeatedly fetches a 10 KB page over mini-TCP while driving,
// with the paper's 10-second no-progress abort. It compares hard handoff,
// diversity without salvaging, and full ViFi — isolating what each
// mechanism buys, exactly as Fig 9a does.
package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"github.com/vanlan/vifi"
)

func main() {
	run(os.Stdout, 23, 12*time.Minute)
}

func run(w io.Writer, seed int64, airtime time.Duration) {
	arms := []struct {
		name string
		cfg  vifi.Protocol
	}{
		{"BRR (hard handoff)", vifi.HardHandoff()},
		{"Only Diversity", vifi.DiversityOnly()},
		{"ViFi (full)", vifi.DefaultProtocol()},
	}

	fmt.Fprintln(w, "Web browsing while driving: repeated 10 KB fetches on VanLAN")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-20s %10s %12s %12s %18s\n",
		"protocol", "completed", "median (s)", "p90 (s)", "transfers/session")
	for _, arm := range arms {
		st := vifi.NewVanLAN(seed, arm.cfg).RunTCP(airtime)
		fmt.Fprintf(w, "%-20s %10d %12.2f %12.2f %18.1f\n",
			arm.name, st.Completed, st.MedianTransferTime(),
			st.TransferTimes.Quantile(0.9), st.TransfersPerSession())
	}
	fmt.Fprintln(w, "\npaper shape: ViFi doubles successful transfers; salvaging adds ~10% over diversity alone")
}
