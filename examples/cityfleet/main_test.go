package main

import (
	"strings"
	"testing"
	"time"
)

func TestSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 42, "grid-small,vehicles=4", 20*time.Second); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ViFi (diversity)") || !strings.Contains(s, "BRR (hard handoff)") {
		t.Errorf("arms missing:\n%s", s)
	}
	if !strings.Contains(s, "presets:") {
		t.Errorf("preset listing missing:\n%s", s)
	}
}

func TestBadSpec(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 1, "grid-city,bogus=1", time.Second); err == nil {
		t.Error("bad spec accepted")
	}
}
