// cityfleet demonstrates the scenario generator: a synthetic city-scale
// deployment — dozens of basestations on a jittered street grid, a fleet
// of vehicles on generated routes with staggered departures — driven by
// the constant-rate fleet workload under full ViFi and under the
// hard-handoff baseline. Everything is deterministic per seed; tweak the
// spec string to explore any scale ("handles as many scenarios as you can
// imagine").
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"github.com/vanlan/vifi"
)

func main() {
	if err := run(os.Stdout, 42, "grid-city,vehicles=12", 2*time.Minute); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, seed int64, spec string, airtime time.Duration) error {
	fmt.Fprintf(w, "City fleet on a generated deployment: %s\n", spec)
	fmt.Fprintln(w)

	arms := []struct {
		name string
		cfg  vifi.Protocol
	}{
		{"BRR (hard handoff)", vifi.HardHandoff()},
		{"ViFi (diversity)", vifi.DefaultProtocol()},
	}
	fmt.Fprintf(w, "%-20s %14s %12s %20s %18s\n",
		"protocol", "delivered/s", "delivery", "median session (s)", "interrupts/veh·h")
	for _, arm := range arms {
		d, err := vifi.NewScenario(seed, spec, arm.cfg)
		if err != nil {
			return err
		}
		res, err := d.RunFleet(airtime)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-20s %14.1f %11.0f%% %20.0f %18.0f\n",
			arm.name, res.DeliveredPerSec(), 100*res.DeliveryRatio(),
			res.MedianSession(time.Second, 0.5), res.Interruptions())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "presets:", vifi.ScenarioPresets())
	fmt.Fprintln(w, "override anything: e.g. \"cluster-town,vehicles=32,bs=80,range=220\"")
	return nil
}
