// fleetapps demonstrates per-vehicle application workloads on a
// generated city deployment: a mixed fleet — some vehicles running
// repeated TCP transfers, some holding VoIP calls, some browsing the
// web, some probing at constant rate — contends for one shared channel
// under full ViFi and under the hard-handoff baseline. This is the
// paper's §5.3 question (what do applications see?) asked at fleet
// scale: compare how each application's metric degrades per protocol.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"github.com/vanlan/vifi"
)

func main() {
	if err := run(os.Stdout, 42, "grid-city,vehicles=8,app=mixed,mix=1:3:2:2", 3*time.Minute); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, seed int64, spec string, airtime time.Duration) error {
	fmt.Fprintf(w, "Mixed application fleet on a generated deployment: %s\n\n", spec)

	arms := []struct {
		name string
		cfg  vifi.Protocol
	}{
		{"BRR (hard handoff)", vifi.HardHandoff()},
		{"ViFi (full)", vifi.DefaultProtocol()},
	}
	for _, arm := range arms {
		d, err := vifi.NewScenario(seed, spec, arm.cfg)
		if err != nil {
			return err
		}
		run, err := d.RunFleet(airtime)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s — %d basestations, %d vehicles\n", arm.name, run.BSCount, run.Vehicles)
		if s := run.Apps.App(vifi.CBRApp); s.Vehicles > 0 {
			fmt.Fprintf(w, "  cbr  %d veh: %.0f%% delivered, median session %.0f s\n",
				s.Vehicles, 100*run.DeliveryRatio(), run.MedianSession(time.Second, 0.5))
		}
		if s := run.Apps.App(vifi.TCPApp); s.Vehicles > 0 {
			fmt.Fprintf(w, "  tcp  %d veh: %d transfers (%d aborted), median %.2f s\n",
				s.Vehicles, s.Completed, s.Aborted, s.MedianTransferSec)
		}
		if s := run.Apps.App(vifi.VoIPApp); s.Vehicles > 0 {
			fmt.Fprintf(w, "  voip %d veh: mean MoS %.2f, %d disruptions (%.2f /call·min)\n",
				s.Vehicles, s.MeanMoS, s.Disruptions, s.DisruptionsPerMin)
		}
		if s := run.Apps.App(vifi.WebApp); s.Vehicles > 0 {
			fmt.Fprintf(w, "  web  %d veh: %d pages (%d aborted), median %.2f s\n",
				s.Vehicles, s.Completed, s.Aborted, s.MedianTransferSec)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "paper shape: ViFi's diversity roughly doubles TCP throughput and")
	fmt.Fprintln(w, "halves VoIP disruptions versus hard handoff (§5.3), here measured")
	fmt.Fprintln(w, "while four applications contend for the same basestations.")
	fmt.Fprintln(w, "spec knobs: app=cbr|tcp|voip|web|mixed, mix=cbr:tcp:voip:web,")
	fmt.Fprintln(w, "xfer=<bytes>, think=<dur> — see internal/scenario.")
	return nil
}
