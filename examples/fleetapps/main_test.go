package main

import (
	"strings"
	"testing"
	"time"
)

func TestSmoke(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 42, "grid,vehicles=4,app=mixed", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"BRR (hard handoff)", "ViFi (full)"} {
		if !strings.Contains(s, want) {
			t.Errorf("arm %q missing:\n%s", want, s)
		}
	}
	// An even 4-way split over 4 vehicles puts one vehicle on each app,
	// so every application block must appear for both arms.
	for _, want := range []string{"cbr  1 veh", "tcp  1 veh", "voip 1 veh", "web  1 veh"} {
		if strings.Count(s, want) != 2 {
			t.Errorf("per-app line %q missing or not per-arm:\n%s", want, s)
		}
	}
}

func TestBadSpec(t *testing.T) {
	var out strings.Builder
	if err := run(&out, 1, "grid,app=nope", time.Second); err == nil {
		t.Error("bad app spec accepted")
	}
}
